//! Values: constants and marked nulls.
//!
//! The survey's data model (§2) populates databases from two disjoint,
//! countably infinite sets: constants (`Const`) and nulls (`Null`). We model
//! constants as either interned strings or 64-bit integers (real databases
//! are typed; see §6 "Types of attributes" — integers are enough to exercise
//! every algorithm in the survey while keeping comparisons cheap), and nulls
//! as `⊥ᵢ` for a 32-bit identifier `i`.

use std::fmt;
use std::sync::Arc;

/// Identifier of a marked null. ⊥ᵢ is represented by `NullId(i)`.
pub type NullId = u32;

/// A constant from the set `Const`.
///
/// Constants are totally ordered and hashable so that relations can be kept
/// in canonical order and joins can be hash-based.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// A string constant (reference counted: constants are shared freely
    /// between tuples, relations and query answers).
    Str(Arc<str>),
}

impl Const {
    /// Build a string constant.
    pub fn str(s: impl AsRef<str>) -> Self {
        Const::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer constant.
    pub const fn int(i: i64) -> Self {
        Const::Int(i)
    }

    /// Returns the integer payload if this constant is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Int(i) => Some(*i),
            Const::Str(_) => None,
        }
    }

    /// Returns the string payload if this constant is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Const::Int(_) => None,
            Const::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Const {
    fn from(i: i64) -> Self {
        Const::Int(i)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Self {
        Const::str(s)
    }
}

impl From<i32> for Const {
    fn from(i: i32) -> Self {
        Const::Int(i64::from(i))
    }
}

impl From<String> for Const {
    fn from(s: String) -> Self {
        Const::Str(Arc::from(s.as_str()))
    }
}

/// A database value: either a constant or a marked null `⊥ᵢ`.
///
/// The ordering places all constants before all nulls; among constants the
/// order is the [`Const`] order, among nulls the order is by identifier.
/// This ordering is only used to keep relation contents canonical — it has
/// no semantic meaning (the survey's model has no order predicate on nulls).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A constant.
    Const(Const),
    /// A marked null ⊥ᵢ.
    Null(NullId),
}

impl Value {
    /// Build an integer constant value.
    pub const fn int(i: i64) -> Self {
        Value::Const(Const::Int(i))
    }

    /// Build a string constant value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Const(Const::str(s))
    }

    /// Build a marked null ⊥ᵢ.
    pub const fn null(id: NullId) -> Self {
        Value::Null(id)
    }

    /// `true` iff the value is a constant (the `const(x)` atomic predicate
    /// of the paper's selection-condition grammar).
    pub const fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// `true` iff the value is a null (the `null(x)` atomic predicate).
    pub const fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Returns the constant if this value is one.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }

    /// Returns the null identifier if this value is a null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Const(_) => None,
            Value::Null(n) => Some(*n),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "⊥{n}"),
        }
    }
}

impl From<Const> for Value {
    fn from(c: Const) -> Self {
        Value::Const(c)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn const_constructors_round_trip() {
        assert_eq!(Const::int(7).as_int(), Some(7));
        assert_eq!(Const::str("abc").as_str(), Some("abc"));
        assert_eq!(Const::int(7).as_str(), None);
        assert_eq!(Const::str("abc").as_int(), None);
    }

    #[test]
    fn value_kind_predicates() {
        assert!(Value::int(1).is_const());
        assert!(!Value::int(1).is_null());
        assert!(Value::null(3).is_null());
        assert!(!Value::null(3).is_const());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::int(5).as_const(), Some(&Const::Int(5)));
        assert_eq!(Value::int(5).as_null(), None);
        assert_eq!(Value::null(2).as_null(), Some(2));
        assert_eq!(Value::null(2).as_const(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("o1").to_string(), "'o1'");
        assert_eq!(Value::null(7).to_string(), "⊥7");
    }

    #[test]
    fn constants_order_before_nulls() {
        let mut set = BTreeSet::new();
        set.insert(Value::null(0));
        set.insert(Value::int(100));
        set.insert(Value::str("zzz"));
        let v: Vec<_> = set.into_iter().collect();
        assert!(v.iter().position(|x| x.is_null()).unwrap() > 1);
    }

    #[test]
    fn from_impls() {
        let a: Value = 3i64.into();
        let b: Value = "x".into();
        let c: Const = "y".into();
        assert_eq!(a, Value::int(3));
        assert_eq!(b, Value::str("x"));
        assert_eq!(Value::from(c), Value::str("y"));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_ne!(Value::null(1), Value::null(2));
        assert_ne!(Value::int(1), Value::null(1));
    }
}
