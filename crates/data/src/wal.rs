//! Crash-safe write-ahead logging for [`Database`] / [`BagDatabase`].
//!
//! The durability layer serializes the existing [`Delta`] vocabulary into a
//! **length-prefixed, CRC32-checksummed, epoch-ordered** append-only log
//! (`wal.log`), paired with periodic full snapshots (see
//! [`crate::snapshot`]) written via temp-file + atomic rename. Recovery
//! ([`recover`] / [`recover_bag`]) loads the newest valid snapshot and
//! replays the WAL tail, tolerating torn, truncated or bit-flipped trailing
//! records by stopping at the first bad frame instead of failing the whole
//! store — exactly the contract a kill -9 leaves behind.
//!
//! ## Frame format
//!
//! ```text
//! ┌───────────┬───────────┬────────────────────────────┐
//! │ len: u32  │ crc: u32  │ payload (len bytes)        │
//! │ (LE)      │ (LE)      │   epoch: u64 (LE)          │
//! │           │           │   record: WalRecord        │
//! └───────────┴───────────┴────────────────────────────┘
//! ```
//!
//! `crc` is the [CRC-32/IEEE](crate::crc32) of the payload. Frame epochs
//! are strictly increasing; a frame whose epoch does not advance is treated
//! as corruption. Structural mutations — which the delta vocabulary cannot
//! replay — are persisted as `Reset` frames carrying the relation's full
//! post-change contents ([`WalRecord::ResetSet`] / [`WalRecord::ResetBag`]);
//! for `relation_mut` the reset is deferred until the outstanding borrow
//! has provably ended (the next logged mutation, or an explicit
//! [`Database::sync_durable`]).
//!
//! ## Crash injection
//!
//! Under the `fault-injection` feature, [`arm_crashes`] installs a seeded
//! schedule that deterministically truncates or bit-flips the file mid-write
//! at the `wal:frame`, `snapshot:tmp` and `snapshot:rename` sites and
//! poisons the attached log (as if the process died there);
//! [`arm_crash_site`] targets one site's n-th hit exactly. Production
//! builds compile the checks away.

use crate::bag::BagRelation;
use crate::crc32::crc32;
use crate::database::{BagDatabase, Database};
use crate::delta::Delta;
use crate::relation::Relation;
use crate::schema::{RelationSchema, Schema};
use crate::snapshot::{self, SnapshotContents};
use crate::tuple::Tuple;
use crate::value::{Const, Value};
use crate::{DataError, Result};
use certa_obs as obs;
use obs::{HistogramId, MetricId};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Name of the write-ahead log inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Upper bound on a single frame's payload; anything larger in the length
/// prefix is treated as corruption rather than an allocation request.
const MAX_FRAME: usize = 1 << 26;

pub(crate) fn corrupt(detail: impl Into<String>) -> DataError {
    DataError::Corrupt {
        detail: detail.into(),
    }
}

pub(crate) fn io_err(op: &str, e: &std::io::Error) -> DataError {
    DataError::Io {
        op: op.to_string(),
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Binary codec (shared with the snapshot module)
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_const(buf: &mut Vec<u8>, c: &Const) {
    match c {
        Const::Int(i) => {
            buf.push(0);
            put_u64(buf, *i as u64);
        }
        Const::Str(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

pub(crate) fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Const(c) => {
            buf.push(0);
            put_const(buf, c);
        }
        Value::Null(n) => {
            buf.push(1);
            put_u32(buf, *n);
        }
    }
}

pub(crate) fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.iter() {
        put_value(buf, v);
    }
}

pub(crate) fn put_relation(buf: &mut Vec<u8>, r: &Relation) {
    put_u32(buf, r.arity() as u32);
    put_u32(buf, r.len() as u32);
    for t in r.iter() {
        put_tuple(buf, t);
    }
}

pub(crate) fn put_bag_relation(buf: &mut Vec<u8>, r: &BagRelation) {
    put_u32(buf, r.arity() as u32);
    put_u32(buf, r.distinct_len() as u32);
    for (t, n) in r.iter() {
        put_tuple(buf, t);
        put_u64(buf, n as u64);
    }
}

pub(crate) fn put_schema(buf: &mut Vec<u8>, s: &Schema) {
    put_u32(buf, s.len() as u32);
    for rel in s.iter() {
        put_str(buf, rel.name());
        put_u32(buf, rel.attributes().len() as u32);
        for a in rel.attributes() {
            put_str(buf, a);
        }
    }
}

pub(crate) fn put_delta(buf: &mut Vec<u8>, d: &Delta) {
    match d {
        Delta::Insert { relation, tuples } => {
            buf.push(0);
            put_str(buf, relation);
            put_u32(buf, tuples.len() as u32);
            for t in tuples {
                put_tuple(buf, t);
            }
        }
        Delta::Delete { relation, tuples } => {
            buf.push(1);
            put_str(buf, relation);
            put_u32(buf, tuples.len() as u32);
            for t in tuples {
                put_tuple(buf, t);
            }
        }
        Delta::Resolve { null, value } => {
            buf.push(2);
            put_u32(buf, *null);
            put_const(buf, value);
        }
        Delta::Structural => buf.push(3),
    }
}

/// Bounded cursor over an encoded payload; every read is length-checked and
/// reports a typed [`DataError::Corrupt`] instead of panicking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("payload ends mid-field"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let b = self.bytes(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt("string field is not utf-8"))
    }

    pub(crate) fn const_(&mut self) -> Result<Const> {
        match self.u8()? {
            0 => Ok(Const::Int(self.u64()? as i64)),
            1 => Ok(Const::str(self.str()?)),
            t => Err(corrupt(format!("unknown const tag {t}"))),
        }
    }

    pub(crate) fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Const(self.const_()?)),
            1 => Ok(Value::Null(self.u32()?)),
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    pub(crate) fn tuple(&mut self) -> Result<Tuple> {
        let arity = self.u32()? as usize;
        if arity > self.buf.len() - self.pos {
            return Err(corrupt("tuple arity exceeds payload"));
        }
        let mut vs = Vec::with_capacity(arity);
        for _ in 0..arity {
            vs.push(self.value()?);
        }
        Ok(Tuple::new(vs))
    }

    pub(crate) fn relation(&mut self) -> Result<Relation> {
        let arity = self.u32()? as usize;
        let count = self.u32()? as usize;
        if count > self.buf.len() - self.pos {
            return Err(corrupt("relation count exceeds payload"));
        }
        let mut tuples = Vec::with_capacity(count);
        for _ in 0..count {
            let t = self.tuple()?;
            if t.arity() != arity {
                return Err(corrupt("relation tuple arity mismatch"));
            }
            tuples.push(t);
        }
        Ok(Relation::with_arity(arity, tuples))
    }

    pub(crate) fn bag_relation(&mut self) -> Result<BagRelation> {
        let arity = self.u32()? as usize;
        let count = self.u32()? as usize;
        if count > self.buf.len() - self.pos {
            return Err(corrupt("bag relation count exceeds payload"));
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            let t = self.tuple()?;
            if t.arity() != arity {
                return Err(corrupt("bag relation tuple arity mismatch"));
            }
            let n = self.u64()?;
            let n = usize::try_from(n).map_err(|_| corrupt("bag multiplicity overflow"))?;
            items.push((t, n));
        }
        Ok(BagRelation::from_counted(arity, items))
    }

    pub(crate) fn schema(&mut self) -> Result<Schema> {
        let count = self.u32()? as usize;
        if count > self.buf.len() - self.pos {
            return Err(corrupt("schema relation count exceeds payload"));
        }
        let mut rels = Vec::with_capacity(count);
        for _ in 0..count {
            let name = self.str()?;
            let n_attrs = self.u32()? as usize;
            if n_attrs > self.buf.len() - self.pos {
                return Err(corrupt("schema attribute count exceeds payload"));
            }
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                attrs.push(self.str()?);
            }
            rels.push(RelationSchema::new(name, attrs));
        }
        Schema::from_relations(rels).map_err(|e| corrupt(format!("invalid schema: {e}")))
    }

    pub(crate) fn delta(&mut self) -> Result<Delta> {
        match self.u8()? {
            0 | 1 => {
                let is_insert = self.buf[self.pos - 1] == 0;
                let relation = self.str()?;
                let count = self.u32()? as usize;
                if count > self.buf.len() - self.pos {
                    return Err(corrupt("delta tuple count exceeds payload"));
                }
                let mut tuples = Vec::with_capacity(count);
                for _ in 0..count {
                    tuples.push(self.tuple()?);
                }
                Ok(if is_insert {
                    Delta::Insert { relation, tuples }
                } else {
                    Delta::Delete { relation, tuples }
                })
            }
            2 => Ok(Delta::Resolve {
                null: self.u32()?,
                value: self.const_()?,
            }),
            3 => Ok(Delta::Structural),
            t => Err(corrupt(format!("unknown delta tag {t}"))),
        }
    }

    pub(crate) fn record(&mut self) -> Result<WalRecord> {
        match self.u8()? {
            0 => Ok(WalRecord::Delta(self.delta()?)),
            1 => Ok(WalRecord::ResetSet {
                relation: self.str()?,
                rel: self.relation()?,
            }),
            2 => Ok(WalRecord::ResetBag {
                relation: self.str()?,
                rel: self.bag_relation()?,
            }),
            t => Err(corrupt(format!("unknown wal record tag {t}"))),
        }
    }

    pub(crate) fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after record"))
        }
    }
}

/// One replayable WAL entry. [`Delta`]s are replayed as the mutation they
/// describe; `Reset` frames carry a relation's full post-change contents
/// (the durable form of [`Delta::Structural`], which by itself says only
/// "something changed").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A typed mutation, replayed through the delta vocabulary.
    Delta(Delta),
    /// Wholesale replacement of a set-semantics relation.
    ResetSet {
        /// Target relation name.
        relation: String,
        /// The relation's complete contents after the structural change.
        rel: Relation,
    },
    /// Wholesale replacement of a bag-semantics relation.
    ResetBag {
        /// Target relation name.
        relation: String,
        /// The relation's complete contents after the structural change.
        rel: BagRelation,
    },
}

// ---------------------------------------------------------------------------
// Crash injection (fault-injection feature)
// ---------------------------------------------------------------------------

/// Deterministic crash scheduling for the durability fault sites.
#[cfg(feature = "fault-injection")]
mod faults {
    use certa_obs as obs;
    use obs::MetricId;
    use std::collections::HashMap;
    use std::sync::Mutex;

    enum Mode {
        /// Fire pseudo-randomly at roughly 1-in-`one_in` site checks.
        Schedule { seed: u64, one_in: u64 },
        /// Fire exactly at the `nth` check of `site` (1-based).
        Site { site: String, nth: u64 },
    }

    struct Armed {
        mode: Mode,
        calls: HashMap<&'static str, u64>,
    }

    static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn site_hash(site: &str) -> u64 {
        // FNV-1a, enough to decorrelate sites under one seed.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    pub fn arm(seed: u64, one_in: u64) {
        *ARMED.lock().unwrap() = Some(Armed {
            mode: Mode::Schedule {
                seed,
                one_in: one_in.max(1),
            },
            calls: HashMap::new(),
        });
    }

    pub fn arm_site(site: &str, nth: u64) {
        *ARMED.lock().unwrap() = Some(Armed {
            mode: Mode::Site {
                site: site.to_string(),
                nth: nth.max(1),
            },
            calls: HashMap::new(),
        });
    }

    pub fn disarm() {
        *ARMED.lock().unwrap() = None;
    }

    pub(super) fn fires(site: &'static str) -> Option<u64> {
        obs::metrics().add(MetricId::FaultChecks, 1);
        let mut guard = ARMED.lock().unwrap();
        let armed = guard.as_mut()?;
        let count = armed.calls.entry(site).or_insert(0);
        *count += 1;
        let fired = match &armed.mode {
            Mode::Site { site: s, nth } => {
                if s == site && *count == *nth {
                    Some(splitmix(site_hash(site) ^ *nth))
                } else {
                    None
                }
            }
            Mode::Schedule { seed, one_in } => {
                let r = splitmix(seed ^ site_hash(site).wrapping_add(*count));
                if r.is_multiple_of(*one_in) {
                    Some(splitmix(r))
                } else {
                    None
                }
            }
        };
        if fired.is_some() {
            obs::metrics().add(MetricId::FaultFired, 1);
            obs::instant_detail("crash:fired", site);
        }
        fired
    }
}

/// Arm the seeded crash schedule: each durability fault site check fires
/// with probability roughly 1-in-`one_in`, deterministically in `seed`.
/// A fired site mangles the in-flight write (truncation or a bit flip),
/// poisons the attached log, and surfaces [`DataError::CrashInjected`].
#[cfg(feature = "fault-injection")]
pub fn arm_crashes(seed: u64, one_in: u64) {
    faults::arm(seed, one_in);
}

/// Arm a targeted crash: exactly the `nth` check (1-based) of `site` fires.
/// Sites: `wal:frame`, `snapshot:tmp`, `snapshot:rename`.
#[cfg(feature = "fault-injection")]
pub fn arm_crash_site(site: &str, nth: u64) {
    faults::arm_site(site, nth);
}

/// Disarm any crash schedule installed by [`arm_crashes`] /
/// [`arm_crash_site`].
#[cfg(feature = "fault-injection")]
pub fn disarm_crashes() {
    faults::disarm();
}

#[cfg(feature = "fault-injection")]
pub(crate) fn crash_fires(site: &'static str) -> Option<u64> {
    faults::fires(site)
}

#[cfg(not(feature = "fault-injection"))]
#[inline]
pub(crate) fn crash_fires(_site: &'static str) -> Option<u64> {
    None
}

/// Mangle a frame the way a mid-write crash would: either cut it short at a
/// pseudo-random boundary or flip one byte. Driven by the crash schedule's
/// per-fire random word so schedules are reproducible.
pub(crate) fn mangle(bytes: &[u8], r: u64) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    if r & 1 == 0 {
        let cut = (r >> 1) as usize % bytes.len();
        bytes[..cut].to_vec()
    } else {
        let mut out = bytes.to_vec();
        let idx = (r >> 1) as usize % out.len();
        out[idx] ^= 0x40;
        out
    }
}

// ---------------------------------------------------------------------------
// WAL scanning
// ---------------------------------------------------------------------------

pub(crate) struct ScannedFrame {
    pub(crate) epoch: u64,
    pub(crate) record: WalRecord,
    /// Byte offset where this frame starts, for truncate-on-replay-failure.
    pub(crate) start: u64,
}

pub(crate) struct ScannedWal {
    pub(crate) frames: Vec<ScannedFrame>,
    /// Prefix length (bytes) covered by valid frames; everything after is
    /// torn/corrupt tail and is truncated away on reattach.
    pub(crate) valid_bytes: u64,
    /// Why scanning stopped before end-of-file, if it did.
    pub(crate) truncated: Option<String>,
}

/// Scan a WAL file, stopping (not erroring) at the first bad frame. A
/// missing file is an empty log.
pub(crate) fn scan_wal(path: &Path) -> Result<ScannedWal> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ScannedWal {
                frames: Vec::new(),
                valid_bytes: 0,
                truncated: None,
            })
        }
        Err(e) => return Err(io_err("wal.read", &e)),
    };
    let mut frames: Vec<ScannedFrame> = Vec::new();
    let mut pos = 0usize;
    let mut truncated = None;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            truncated = Some("torn frame header".to_string());
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_FRAME {
            truncated = Some("frame length out of range".to_string());
            break;
        }
        if bytes.len() - pos - 8 < len {
            truncated = Some("torn frame payload".to_string());
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            truncated = Some("frame checksum mismatch".to_string());
            break;
        }
        let mut r = Reader::new(payload);
        let decoded = (|| -> Result<(u64, WalRecord)> {
            let epoch = r.u64()?;
            let record = r.record()?;
            r.done()?;
            Ok((epoch, record))
        })();
        let (epoch, record) = match decoded {
            Ok(x) => x,
            Err(e) => {
                truncated = Some(format!("undecodable frame: {e}"));
                break;
            }
        };
        if let Some(prev) = frames.last() {
            if epoch <= prev.epoch {
                truncated = Some("epoch order violation".to_string());
                break;
            }
        }
        frames.push(ScannedFrame {
            epoch,
            record,
            start: pos as u64,
        });
        pos += 8 + len;
    }
    Ok(ScannedWal {
        frames,
        valid_bytes: pos as u64,
        truncated,
    })
}

// ---------------------------------------------------------------------------
// The attached durable log
// ---------------------------------------------------------------------------

/// Observable state of an attached [`DurableLog`], for `explain()` and
/// operational reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// The durability directory.
    pub dir: PathBuf,
    /// WAL frames appended since attach/recovery.
    pub appends: u64,
    /// Bytes appended to the WAL since attach/recovery.
    pub append_bytes: u64,
    /// How many of the appended frames were structural `Reset` frames.
    pub reset_frames: u64,
    /// Snapshots written since attach/recovery.
    pub snapshots: u64,
    /// Epoch of the most recent successful snapshot.
    pub last_snapshot_epoch: u64,
    /// Structural changes awaiting their deferred `Reset` frame.
    pub pending_structural: usize,
    /// Why the log stopped accepting writes, if it did (an injected crash
    /// or a real I/O failure poisons the log permanently).
    pub failed: Option<String>,
}

impl DurabilityStats {
    /// One-line human summary, used by `Pipeline::explain`.
    pub fn describe(&self) -> String {
        format!(
            "dir {} · {} wal frame(s) ({} bytes, {} reset(s)) · {} snapshot(s), last at epoch {}{}{}",
            self.dir.display(),
            self.appends,
            self.append_bytes,
            self.reset_frames,
            self.snapshots,
            self.last_snapshot_epoch,
            if self.pending_structural > 0 {
                format!(" · {} pending structural reset(s)", self.pending_structural)
            } else {
                String::new()
            },
            match &self.failed {
                Some(f) => format!(" · POISONED: {f}"),
                None => String::new(),
            }
        )
    }
}

/// The durability attachment of a [`Database`] / [`BagDatabase`]: an open
/// append handle on the WAL plus the bookkeeping that every mutation flows
/// through before the mutator returns.
///
/// A poisoned log (injected crash or real I/O error) permanently stops
/// writing — modelling a dead process, so the on-disk prefix stays exactly
/// what a recovery will see. Clones of the owning database do **not**
/// inherit the attachment (two writers on one file would interleave
/// frames).
#[derive(Debug)]
pub struct DurableLog {
    dir: PathBuf,
    file: File,
    /// Deferred structural resets: `(epoch, relation)` recorded by
    /// `relation_mut`, written out at the next mutation or explicit sync.
    pending: Vec<(u64, String)>,
    failed: Option<String>,
    appends: u64,
    append_bytes: u64,
    reset_frames: u64,
    snapshots: u64,
    last_snapshot_epoch: u64,
}

impl DurableLog {
    /// Create (or take over) a durability directory: `wal.log` is opened
    /// fresh. The caller writes the baseline snapshot.
    pub(crate) fn attach(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("wal.create_dir", &e))?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join(WAL_FILE))
            .map_err(|e| io_err("wal.open", &e))?;
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            file,
            pending: Vec::new(),
            failed: None,
            appends: 0,
            append_bytes: 0,
            reset_frames: 0,
            snapshots: 0,
            last_snapshot_epoch: 0,
        })
    }

    /// Reopen an existing WAL after recovery, truncating away any torn or
    /// corrupt tail so new frames append to the last *valid* byte.
    pub(crate) fn reattach(dir: &Path, valid_bytes: u64, snapshot_epoch: u64) -> Result<Self> {
        // `set_len` below performs the (partial) truncation; the open
        // itself must preserve the valid prefix.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(WAL_FILE))
            .map_err(|e| io_err("wal.open", &e))?;
        file.set_len(valid_bytes)
            .map_err(|e| io_err("wal.truncate", &e))?;
        file.seek(SeekFrom::Start(valid_bytes))
            .map_err(|e| io_err("wal.seek", &e))?;
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            file,
            pending: Vec::new(),
            failed: None,
            appends: 0,
            append_bytes: 0,
            reset_frames: 0,
            snapshots: 0,
            last_snapshot_epoch: snapshot_epoch,
        })
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn failed(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    pub(crate) fn mark_failed(&mut self, why: impl Into<String>) {
        if self.failed.is_none() {
            self.failed = Some(why.into());
        }
    }

    pub(crate) fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            dir: self.dir.clone(),
            appends: self.appends,
            append_bytes: self.append_bytes,
            reset_frames: self.reset_frames,
            snapshots: self.snapshots,
            last_snapshot_epoch: self.last_snapshot_epoch,
            pending_structural: self.pending.len(),
            failed: self.failed.clone(),
        }
    }

    pub(crate) fn defer_reset(&mut self, epoch: u64, relation: &str) {
        self.pending.push((epoch, relation.to_string()));
    }

    pub(crate) fn take_pending(&mut self) -> Vec<(u64, String)> {
        std::mem::take(&mut self.pending)
    }

    fn write_frame(&mut self, payload: Vec<u8>) -> Result<()> {
        if let Some(f) = &self.failed {
            return Err(DataError::Io {
                op: "wal.append".to_string(),
                detail: format!("durable log is poisoned: {f}"),
            });
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        if let Some(r) = crash_fires("wal:frame") {
            let mangled = mangle(&frame, r);
            let _ = self.file.write_all(&mangled);
            let _ = self.file.sync_data();
            self.failed = Some("crash injected at wal:frame".to_string());
            return Err(DataError::CrashInjected { site: "wal:frame" });
        }
        if let Err(e) = self.file.write_all(&frame) {
            self.failed = Some(format!("wal append failed: {e}"));
            return Err(io_err("wal.append", &e));
        }
        self.appends += 1;
        self.append_bytes += frame.len() as u64;
        obs::metrics().add(MetricId::WalAppends, 1);
        obs::metrics().add(MetricId::WalAppendBytes, frame.len() as u64);
        Ok(())
    }

    pub(crate) fn append_delta(&mut self, epoch: u64, delta: &Delta) -> Result<()> {
        let mut payload = Vec::new();
        put_u64(&mut payload, epoch);
        payload.push(0); // WalRecord::Delta
        put_delta(&mut payload, delta);
        self.write_frame(payload)
    }

    pub(crate) fn append_reset_set(
        &mut self,
        epoch: u64,
        name: &str,
        rel: &Relation,
    ) -> Result<()> {
        let mut payload = Vec::new();
        put_u64(&mut payload, epoch);
        payload.push(1); // WalRecord::ResetSet
        put_str(&mut payload, name);
        put_relation(&mut payload, rel);
        self.write_frame(payload)?;
        self.reset_frames += 1;
        obs::metrics().add(MetricId::WalResetFrames, 1);
        Ok(())
    }

    pub(crate) fn append_reset_bag(
        &mut self,
        epoch: u64,
        name: &str,
        rel: &BagRelation,
    ) -> Result<()> {
        let mut payload = Vec::new();
        put_u64(&mut payload, epoch);
        payload.push(2); // WalRecord::ResetBag
        put_str(&mut payload, name);
        put_bag_relation(&mut payload, rel);
        self.write_frame(payload)?;
        self.reset_frames += 1;
        obs::metrics().add(MetricId::WalResetFrames, 1);
        Ok(())
    }

    /// Record a successful snapshot at `epoch`: the WAL restarts empty (the
    /// snapshot covers everything logged so far).
    pub(crate) fn note_snapshot(&mut self, epoch: u64, bytes: u64) -> Result<()> {
        if self.failed.is_some() {
            return Ok(());
        }
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)).map(|_| ()))
            .map_err(|e| io_err("wal.restart", &e))?;
        self.snapshots += 1;
        self.last_snapshot_epoch = epoch;
        obs::metrics().add(MetricId::SnapshotWrites, 1);
        obs::metrics().add(MetricId::SnapshotBytes, bytes);
        Ok(())
    }

    pub(crate) fn sync(&mut self) -> Result<()> {
        if let Some(f) = &self.failed {
            return Err(DataError::Io {
                op: "wal.sync".to_string(),
                detail: format!("durable log is poisoned: {f}"),
            });
        }
        self.file.sync_all().map_err(|e| io_err("wal.sync", &e))
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What a [`recover`] / [`recover_bag`] run found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot the recovery started from.
    pub snapshot_epoch: u64,
    /// Snapshot files that failed validation and were passed over for an
    /// older one (partial writes, bad checksums).
    pub snapshots_skipped: usize,
    /// WAL frames replayed on top of the snapshot.
    pub frames_replayed: usize,
    /// Valid WAL frames at or below the snapshot epoch (already covered).
    pub frames_skipped: usize,
    /// Why the WAL tail was cut short, if it was (torn write, checksum
    /// mismatch, undecodable or out-of-order frame). The bad tail is
    /// truncated so subsequent appends extend valid history.
    pub wal_truncated: Option<String>,
    /// The recovered database's epoch.
    pub recovered_epoch: u64,
}

fn recover_inner(dir: &Path) -> Result<(SnapshotContents, usize, ScannedWal)> {
    let contents = {
        let _s = obs::span("recovery:load_snapshot");
        snapshot::load_latest(dir)?
    };
    let scanned = scan_wal(&dir.join(WAL_FILE))?;
    Ok((contents.0, contents.1, scanned))
}

/// Recover a set-semantics [`Database`] from a durability directory: load
/// the newest valid snapshot, replay the WAL tail up to the first bad
/// frame, truncate the bad tail, and re-attach the log so further mutations
/// keep appending.
///
/// The recovered database is a **fresh instance** (new instance id, empty
/// in-memory delta log): any answer cache keyed on the pre-crash
/// `(instance, epoch)` can never be served against it.
///
/// # Errors
///
/// Returns [`DataError::Corrupt`] when no snapshot in `dir` validates (a
/// valid store always has at least its attach-time baseline), or
/// [`DataError::Io`] on filesystem failures.
pub fn recover(dir: impl AsRef<Path>) -> Result<(Database, RecoveryReport)> {
    let dir = dir.as_ref();
    let t0 = Instant::now();
    let _span = obs::span("recovery:recover");
    let (contents, snapshots_skipped, scanned) = recover_inner(dir)?;
    let SnapshotContents::Set {
        schema,
        relations,
        epoch: snapshot_epoch,
        next_null,
    } = contents
    else {
        return Err(corrupt(
            "durable store holds a bag database; use recover_bag",
        ));
    };
    let mut db = Database::from_snapshot(schema, relations, snapshot_epoch, next_null);
    let mut report = RecoveryReport {
        snapshot_epoch,
        snapshots_skipped,
        frames_replayed: 0,
        frames_skipped: 0,
        wal_truncated: scanned.truncated.clone(),
        recovered_epoch: snapshot_epoch,
    };
    let mut valid_bytes = scanned.valid_bytes;
    {
        let _s = obs::span("recovery:replay");
        for f in &scanned.frames {
            if f.epoch <= snapshot_epoch {
                report.frames_skipped += 1;
                continue;
            }
            match db.replay_record(f.epoch, &f.record) {
                Ok(()) => report.frames_replayed += 1,
                Err(e) => {
                    report.wal_truncated = Some(format!("replay stopped: {e}"));
                    valid_bytes = f.start;
                    break;
                }
            }
        }
    }
    let log = DurableLog::reattach(dir, valid_bytes, snapshot_epoch)?;
    db.set_durable(log);
    report.recovered_epoch = db.epoch();
    finish_recovery_metrics(&report, t0);
    Ok((db, report))
}

/// Recover a bag-semantics [`BagDatabase`]; see [`recover`].
///
/// # Errors
///
/// As [`recover`], plus [`DataError::Corrupt`] when the store holds a
/// set-semantics database.
pub fn recover_bag(dir: impl AsRef<Path>) -> Result<(BagDatabase, RecoveryReport)> {
    let dir = dir.as_ref();
    let t0 = Instant::now();
    let _span = obs::span("recovery:recover");
    let (contents, snapshots_skipped, scanned) = recover_inner(dir)?;
    let SnapshotContents::Bag {
        schema,
        relations,
        epoch: snapshot_epoch,
    } = contents
    else {
        return Err(corrupt("durable store holds a set database; use recover"));
    };
    let mut db = BagDatabase::from_snapshot(schema, relations, snapshot_epoch);
    let mut report = RecoveryReport {
        snapshot_epoch,
        snapshots_skipped,
        frames_replayed: 0,
        frames_skipped: 0,
        wal_truncated: scanned.truncated.clone(),
        recovered_epoch: snapshot_epoch,
    };
    let mut valid_bytes = scanned.valid_bytes;
    {
        let _s = obs::span("recovery:replay");
        for f in &scanned.frames {
            if f.epoch <= snapshot_epoch {
                report.frames_skipped += 1;
                continue;
            }
            match db.replay_record(f.epoch, &f.record) {
                Ok(()) => report.frames_replayed += 1,
                Err(e) => {
                    report.wal_truncated = Some(format!("replay stopped: {e}"));
                    valid_bytes = f.start;
                    break;
                }
            }
        }
    }
    let log = DurableLog::reattach(dir, valid_bytes, snapshot_epoch)?;
    db.set_durable(log);
    report.recovered_epoch = db.epoch();
    finish_recovery_metrics(&report, t0);
    Ok((db, report))
}

fn finish_recovery_metrics(report: &RecoveryReport, t0: Instant) {
    let m = obs::metrics();
    m.add(MetricId::RecoveryRuns, 1);
    m.add(
        MetricId::RecoveryReplayedFrames,
        report.frames_replayed as u64,
    );
    if report.wal_truncated.is_some() {
        m.add(MetricId::WalBadFrames, 1);
    }
    m.observe(
        HistogramId::RecoveryMicros,
        u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn roundtrip_delta(d: &Delta) {
        let mut buf = Vec::new();
        put_delta(&mut buf, d);
        let mut r = Reader::new(&buf);
        assert_eq!(&r.delta().unwrap(), d);
        r.done().unwrap();
    }

    #[test]
    fn codec_round_trips_every_delta_variant() {
        roundtrip_delta(&Delta::Insert {
            relation: "R".into(),
            tuples: vec![tup![1, "x"], tup![Value::null(7), -3]],
        });
        roundtrip_delta(&Delta::Delete {
            relation: "S".into(),
            tuples: vec![tup![Value::null(0)]],
        });
        roundtrip_delta(&Delta::Resolve {
            null: 42,
            value: Const::str("résolu"),
        });
        roundtrip_delta(&Delta::Structural);
    }

    #[test]
    fn codec_round_trips_relations_and_schemas() {
        let rel = Relation::with_arity(2, vec![tup![1, 2], tup![Value::null(3), "a"]]);
        let mut buf = Vec::new();
        put_relation(&mut buf, &rel);
        let mut r = Reader::new(&buf);
        assert_eq!(r.relation().unwrap(), rel);
        r.done().unwrap();

        let bag = BagRelation::from_counted(1, vec![(tup![5], 3), (tup![Value::null(1)], 1)]);
        let mut buf = Vec::new();
        put_bag_relation(&mut buf, &bag);
        let mut r = Reader::new(&buf);
        assert_eq!(r.bag_relation().unwrap(), bag);

        let schema = Schema::from_relations(vec![
            RelationSchema::new("R", vec!["a", "b"]),
            RelationSchema::new("S", vec!["c"]),
        ])
        .unwrap();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let mut r = Reader::new(&buf);
        assert_eq!(r.schema().unwrap(), schema);
    }

    #[test]
    fn decoder_rejects_garbage_with_typed_errors() {
        let mut r = Reader::new(&[9, 9, 9]);
        assert!(matches!(r.record(), Err(DataError::Corrupt { .. })));
        let mut r = Reader::new(&[]);
        assert!(matches!(r.u32(), Err(DataError::Corrupt { .. })));
        // A tuple claiming more values than the payload can hold must not
        // attempt the allocation.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.tuple(), Err(DataError::Corrupt { .. })));
    }

    #[test]
    fn scan_stops_at_torn_and_corrupt_tails() {
        let dir = std::env::temp_dir().join(format!(
            "certa-wal-scan-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut log = DurableLog::attach(&dir).unwrap();
        for e in 1..=4u64 {
            log.append_delta(
                e,
                &Delta::Insert {
                    relation: "R".into(),
                    tuples: vec![tup![e as i64]],
                },
            )
            .unwrap();
        }
        drop(log);
        let clean = std::fs::read(&path).unwrap();
        let full = scan_wal(&path).unwrap();
        assert_eq!(full.frames.len(), 4);
        assert_eq!(full.valid_bytes, clean.len() as u64);
        assert!(full.truncated.is_none());
        assert_eq!(
            full.frames.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );

        // Truncate at every possible byte boundary: the scan must keep the
        // longest valid frame prefix and report the tear.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let s = scan_wal(&path).unwrap();
            assert!(s.frames.len() <= 4);
            assert!(s.valid_bytes <= cut as u64);
            if cut < clean.len() {
                // Either we cut exactly on a frame boundary (no tear) or
                // the tail is reported torn.
                assert_eq!(s.truncated.is_some(), s.valid_bytes != cut as u64);
            }
            for (i, f) in s.frames.iter().enumerate() {
                assert_eq!(f.epoch, (i + 1) as u64);
            }
        }

        // Flip one byte in the *last* frame: the first three must survive.
        let mut flipped = clean.clone();
        let last = flipped.len() - 3;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        let s = scan_wal(&path).unwrap();
        assert_eq!(s.frames.len(), 3);
        assert!(s.truncated.is_some());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_is_an_empty_log() {
        let s = scan_wal(Path::new("/nonexistent/certa/wal.log")).unwrap();
        assert!(s.frames.is_empty());
        assert_eq!(s.valid_bytes, 0);
        assert!(s.truncated.is_none());
    }

    #[test]
    fn mangle_is_deterministic_and_always_damages() {
        let frame: Vec<u8> = (0..64u8).collect();
        for r in [0u64, 1, 2, 3, 1234, u64::MAX, 0xDEAD_BEEF] {
            let a = mangle(&frame, r);
            let b = mangle(&frame, r);
            assert_eq!(a, b);
            assert_ne!(a, frame);
        }
    }
}
