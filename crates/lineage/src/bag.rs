//! Bag multiplicity ranges off the lineage: `□Q` and `◇Q` without
//! enumerating a single world.
//!
//! Under bag semantics a tuple's multiplicity across the possible worlds is
//! the *sum of weighted row indicators*: evaluating the monus-free fragment
//! (σ, π, ×, ∪ — `UNION ALL`-style, the fragment where row-level provenance
//! equals bag multiplicity) over c-table rows that carry their base
//! multiplicity as a weight yields rows `⟨s̄, φ, w⟩` with
//!
//! ```text
//! #(v(t̄), Q(v(D))) = Σ_rows w · [v ⊨ φ ∧ v(s̄) = v(t̄)]
//! ```
//!
//! Each indicator compiles to a boolean diagram over the shared null
//! encoding; scaling it by `w` and summing across rows with an *arithmetic
//! decision diagram* (same ordering, hash-consed, numeric terminals) gives
//! a canonical map from worlds to multiplicities — `□Q`/`◇Q` are the
//! minimum/maximum over its (all reachable) terminals. Difference and
//! intersection are rejected up front: bag monus and min are not row-wise,
//! so the weighted reading would be unsound there.

use crate::batch::check_symbolic_fragment_for_bags;
use crate::encode::Encoding;
use crate::order::var_order;
use crate::store::{Forest, NodeId as BoolNode, FALSE as BOOL_FALSE};
use crate::{LineageError, Result};
use certa_algebra::physical::{self, AnnRel, Annotation, Source};
use certa_algebra::{Condition, RaExpr};
use certa_ctables::eval::instantiate_condition;
use certa_ctables::Cond;
use certa_data::{BagDatabase, Const, Tuple, Value};
use certa_logic::Truth3;
use std::collections::{BTreeSet, HashMap};

/// The weighted conditional annotation: a symbolic condition plus the bag
/// multiplicity the row carries. `times` multiplies weights and conjoins
/// conditions (products/joins); selection conjoins the instantiated
/// predicate. Duplicate rows are never merged — each keeps its own
/// condition and weight — and the non-row-wise operators (difference,
/// intersection) are unreachable because the fragment check rejects them
/// before planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedCondAnn {
    /// The row's presence condition.
    pub cond: Cond,
    /// The row's multiplicity contribution when the condition holds.
    pub weight: usize,
}

impl Annotation for WeightedCondAnn {
    const MERGE_DUPLICATES: bool = false;
    const SYMBOLIC_NULLS: bool = true;
    const SUPPORTS_EXTENDED: bool = false;

    fn one() -> Self {
        WeightedCondAnn {
            cond: Cond::truth(),
            weight: 1,
        }
    }

    fn is_zero(&self) -> bool {
        self.weight == 0 || self.cond == Cond::Truth(Truth3::False)
    }

    fn plus(&mut self, _other: Self) {
        // Only duplicate-merging domains ever receive `plus`, and this
        // domain keeps every row separate.
        unreachable!("WeightedCondAnn never merges duplicate rows");
    }

    fn times(&self, other: &Self) -> Self {
        WeightedCondAnn {
            cond: self.cond.clone().and(other.cond.clone()),
            weight: self.weight.saturating_mul(other.weight),
        }
    }

    fn monus(&self, _other: &Self) -> Self {
        // Bag monus subtracts *summed* multiplicities; it has no row-wise
        // reading, so the fragment check rejects `−` before execution.
        unreachable!("bag lineage rejects difference before planning");
    }

    fn select(&self, cond: &Condition, tuple: &Tuple) -> Self {
        WeightedCondAnn {
            cond: self.cond.clone().and(instantiate_condition(cond, tuple)),
            weight: self.weight,
        }
    }

    fn difference(_left: AnnRel<Self>, _right: &AnnRel<Self>) -> AnnRel<Self> {
        unreachable!("bag lineage rejects difference before planning");
    }

    fn intersect(_left: AnnRel<Self>, _right: &AnnRel<Self>) -> AnnRel<Self> {
        unreachable!("bag lineage rejects intersection before planning");
    }
}

/// Scan a bag database into weighted conditional rows.
struct WeightedCondSource<'a>(&'a BagDatabase);

impl Source<WeightedCondAnn> for WeightedCondSource<'_> {
    fn scan(
        &self,
        name: &str,
        filter: Option<&Condition>,
    ) -> certa_algebra::Result<AnnRel<WeightedCondAnn>> {
        let rel = self
            .0
            .relation(name)
            .map_err(|_| certa_algebra::AlgebraError::UnknownRelation(name.to_string()))?;
        let mut out = AnnRel::new(rel.arity());
        for (t, n) in rel.iter() {
            let mut ann = WeightedCondAnn {
                cond: Cond::truth(),
                weight: n,
            };
            if let Some(cond) = filter {
                ann = ann.select(cond, t);
            }
            out.push(t.clone(), ann);
        }
        Ok(out)
    }

    fn active_domain(&self) -> Vec<Value> {
        // Extended operators are rejected before execution.
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Arithmetic decision diagrams (numeric terminals, shared variable order)
// ---------------------------------------------------------------------------

/// Node id in an [`AddForest`].
type AddNode = u32;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum AddEntry {
    Terminal(usize),
    Internal {
        level: u32,
        children: Box<[AddNode]>,
    },
}

/// A hash-consed store of reduced, ordered arithmetic decision diagrams:
/// decision structure identical to [`Forest`], terminals carry
/// multiplicities. Used to sum weighted indicators and read off min/max
/// multiplicities across the valuation space.
#[derive(Debug)]
struct AddForest {
    domains: Vec<usize>,
    entries: Vec<AddEntry>,
    unique: HashMap<AddEntry, AddNode>,
    add_cache: HashMap<(AddNode, AddNode), AddNode>,
    /// Set when any terminal sum clamps at `usize::MAX`: the affected
    /// bounds are no longer exact and must surface as an overflow error,
    /// never as a confidently wrong number.
    saturated: bool,
}

impl AddForest {
    fn new(domains: Vec<usize>) -> AddForest {
        AddForest {
            domains,
            entries: Vec::new(),
            unique: HashMap::new(),
            add_cache: HashMap::new(),
            saturated: false,
        }
    }

    fn intern(&mut self, entry: AddEntry) -> AddNode {
        if let Some(&id) = self.unique.get(&entry) {
            return id;
        }
        let id = AddNode::try_from(self.entries.len()).expect("more than u32::MAX ADD nodes");
        self.entries.push(entry.clone());
        self.unique.insert(entry, id);
        id
    }

    fn terminal(&mut self, value: usize) -> AddNode {
        self.intern(AddEntry::Terminal(value))
    }

    fn mk(&mut self, level: u32, children: Vec<AddNode>) -> AddNode {
        let first = children[0];
        if children.iter().all(|&c| c == first) {
            return first;
        }
        self.intern(AddEntry::Internal {
            level,
            children: children.into_boxed_slice(),
        })
    }

    fn level(&self, n: AddNode) -> u32 {
        match &self.entries[n as usize] {
            AddEntry::Terminal(_) => self.domains.len() as u32,
            AddEntry::Internal { level, .. } => *level,
        }
    }

    fn cofactor(&self, n: AddNode, level: u32, value: usize) -> AddNode {
        match &self.entries[n as usize] {
            AddEntry::Internal { level: l, children } if *l == level => children[value],
            _ => n,
        }
    }

    /// Convert a boolean diagram into the ADD `if φ then weight else 0`.
    fn weighted_indicator(&mut self, forest: &Forest, node: BoolNode, weight: usize) -> AddNode {
        let mut memo: HashMap<BoolNode, AddNode> = HashMap::new();
        self.indicator_rec(forest, node, weight, &mut memo)
    }

    fn indicator_rec(
        &mut self,
        forest: &Forest,
        node: BoolNode,
        weight: usize,
        memo: &mut HashMap<BoolNode, AddNode>,
    ) -> AddNode {
        if let Some(&r) = memo.get(&node) {
            return r;
        }
        let r = if node == crate::store::FALSE {
            self.terminal(0)
        } else if node == crate::store::TRUE {
            self.terminal(weight)
        } else {
            let level = forest.level_of(node);
            let children = (0..self.domains[level as usize])
                .map(|i| {
                    let child = forest.child_of(node, i);
                    self.indicator_rec(forest, child, weight, memo)
                })
                .collect::<Vec<_>>();
            self.mk(level, children)
        };
        memo.insert(node, r);
        r
    }

    /// Pointwise sum of two ADDs. The zero terminal is the additive
    /// identity: returning the other operand directly avoids re-walking
    /// (and re-interning a copy of) whole diagrams.
    fn add(&mut self, a: AddNode, b: AddNode) -> AddNode {
        if matches!(self.entries[a as usize], AddEntry::Terminal(0)) {
            return b;
        }
        if matches!(self.entries[b as usize], AddEntry::Terminal(0)) {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.add_cache.get(&key) {
            return r;
        }
        let r = match (&self.entries[a as usize], &self.entries[b as usize]) {
            (AddEntry::Terminal(x), AddEntry::Terminal(y)) => {
                let sum = match x.checked_add(*y) {
                    Some(sum) => sum,
                    None => {
                        self.saturated = true;
                        usize::MAX
                    }
                };
                self.terminal(sum)
            }
            _ => {
                let top = self.level(a).min(self.level(b));
                let children = (0..self.domains[top as usize])
                    .map(|i| {
                        let (ca, cb) = (self.cofactor(a, top, i), self.cofactor(b, top, i));
                        self.add(ca, cb)
                    })
                    .collect::<Vec<_>>();
                self.mk(top, children)
            }
        };
        self.add_cache.insert(key, r);
        r
    }

    /// `(min, max)` over every reachable terminal. Every terminal of a
    /// reduced ordered diagram is reached by at least one valuation, so
    /// these are exactly `□`/`◇` over the valuation space.
    fn range(&self, root: AddNode) -> (usize, usize) {
        let mut seen: BTreeSet<AddNode> = BTreeSet::new();
        let mut stack = vec![root];
        let (mut lo, mut hi) = (usize::MAX, usize::MIN);
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            match &self.entries[n as usize] {
                AddEntry::Terminal(v) => {
                    lo = lo.min(*v);
                    hi = hi.max(*v);
                }
                AddEntry::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        (lo, hi)
    }
}

/// Compiled bag lineage: weighted rows plus the shared diagram stores.
pub struct BagLineageBatch {
    forest: Forest,
    encoding: Encoding,
    rows: Vec<(Tuple, Cond, usize, BoolNode)>,
    arity: usize,
    db_nulls: BTreeSet<certa_data::NullId>,
    zero_worlds: bool,
}

impl BagLineageBatch {
    /// Evaluate the monus-free fragment over weighted conditional rows and
    /// compile every row condition over `pool`.
    ///
    /// # Errors
    ///
    /// [`LineageError::Unsupported`] outside the fragment (difference,
    /// intersection, extended operators, syntactic predicates, null
    /// literals); [`LineageError::Algebra`] for ill-formed queries.
    pub fn compile(query: &RaExpr, db: &BagDatabase, pool: &[Const]) -> Result<BagLineageBatch> {
        check_symbolic_fragment_for_bags(query)?;
        query.validate(db.schema()).map_err(LineageError::Algebra)?;
        let plan = physical::plan(query, db.schema()).map_err(LineageError::Algebra)?;
        let out = physical::execute(&plan, &WeightedCondSource(db), &mut physical::identity_hook)
            .map_err(LineageError::Algebra)?;

        let db_nulls = db.nulls();
        let zero_worlds = pool.is_empty() && !db_nulls.is_empty();
        let conds: Vec<&Cond> = out.rows().iter().map(|(_, a)| &a.cond).collect();
        // Same ordering signals as the set-semantics batch: cluster
        // same-relation nulls (diagram size is order-sensitive), with the
        // set view standing in for the null → relation scan.
        let stats = certa_algebra::Stats::from_bag_database(db);
        let set_view = db.to_sets();
        let order = var_order(&db_nulls, conds, Some((&stats, &set_view)));
        let encoding = Encoding::new(pool.to_vec(), order);
        let mut forest = Forest::new(encoding.domains());
        let arity = out.arity();
        let mut rows = Vec::with_capacity(out.len());
        for (tuple, ann) in out.into_rows() {
            if !encoding.covers(&ann.cond) || !tuple.nulls().is_subset(&db_nulls) {
                return Err(LineageError::Unsupported(
                    "query introduces nulls outside the database",
                ));
            }
            let node = if zero_worlds {
                BOOL_FALSE
            } else {
                encoding.compile(&mut forest, &ann.cond)?
            };
            rows.push((tuple, ann.cond, ann.weight, node));
        }
        Ok(BagLineageBatch {
            forest,
            encoding,
            rows,
            arity,
            db_nulls,
            zero_worlds,
        })
    }

    /// The exact multiplicity range `[□Q(D, t̄), ◇Q(D, t̄)]` across the
    /// pool's valuation space, read off the summed arithmetic diagram.
    /// `(0, 0)` with an empty valuation space, like the world engines.
    ///
    /// # Errors
    ///
    /// [`LineageError::CountOverflow`] when a row weight or a summed
    /// multiplicity would exceed `usize` — overflow is a value, never a
    /// clamped bound.
    pub fn multiplicity_range(&mut self, tuple: &Tuple) -> Result<(usize, usize)> {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "BagLineageBatch: candidate arity mismatch"
        );
        if self.zero_worlds {
            return Ok((0, 0));
        }
        let foreign = !tuple.nulls().is_subset(&self.db_nulls);
        // One arithmetic forest per candidate: the saturation flag and the
        // clamped terminals it marks are local to a single sum, and must
        // not poison later candidates through a shared add-cache.
        let mut add = AddForest::new(self.encoding.domains());
        let mut total = add.terminal(0);
        for i in 0..self.rows.len() {
            if foreign || self.rows[i].3 == BOOL_FALSE {
                continue;
            }
            // `times` clamps weight products at usize::MAX; a clamped (or
            // genuinely maximal, indistinguishable) weight cannot yield an
            // exact bound.
            if self.rows[i].2 == usize::MAX {
                return Err(LineageError::CountOverflow);
            }
            let matching = Cond::tuple_eq(&self.rows[i].0, tuple);
            let eq_node = self.encoding.compile(&mut self.forest, &matching)?;
            let row_node = self.rows[i].3;
            let indicator = self.forest.and(row_node, eq_node)?;
            if indicator == BOOL_FALSE {
                continue;
            }
            let weighted = add.weighted_indicator(&self.forest, indicator, self.rows[i].2);
            total = add.add(total, weighted);
        }
        if add.saturated {
            return Err(LineageError::CountOverflow);
        }
        Ok(add.range(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_data::{database_from_literal, tup};

    fn pool(k: i64) -> Vec<Const> {
        (0..k).map(Const::Int).collect()
    }

    fn bag_db() -> BagDatabase {
        let sets = database_from_literal([("R", vec!["a"], vec![]), ("S", vec!["a"], vec![])]);
        let mut b = BagDatabase::new(sets.schema().clone());
        b.insert_n("R", tup![1], 2).unwrap();
        b.insert_n("R", tup![Value::null(0)], 1).unwrap();
        b.insert_n("S", tup![1], 1).unwrap();
        b
    }

    #[test]
    fn base_relation_ranges() {
        let b = bag_db();
        let q = RaExpr::rel("R");
        let mut batch = BagLineageBatch::compile(&q, &b, &pool(4)).unwrap();
        // (1): multiplicity 2 always, 3 when ⊥0 = 1.
        assert_eq!(batch.multiplicity_range(&tup![1]).unwrap(), (2, 3));
        // The null candidate: v(⊥0) always counts itself, plus 2 when it
        // collapses onto 1.
        assert_eq!(
            batch.multiplicity_range(&tup![Value::null(0)]).unwrap(),
            (1, 3)
        );
        // A constant outside every world's reach.
        assert_eq!(batch.multiplicity_range(&tup![99]).unwrap(), (0, 0));
    }

    #[test]
    fn union_adds_multiplicities() {
        let b = bag_db();
        let q = RaExpr::rel("R").union(RaExpr::rel("S"));
        let mut batch = BagLineageBatch::compile(&q, &b, &pool(4)).unwrap();
        assert_eq!(batch.multiplicity_range(&tup![1]).unwrap(), (3, 4));
    }

    #[test]
    fn products_multiply_weights() {
        let b = bag_db();
        let q = RaExpr::rel("R").product(RaExpr::rel("S")).project(vec![0]);
        let mut batch = BagLineageBatch::compile(&q, &b, &pool(4)).unwrap();
        // π_a(R × S): every R row keeps its multiplicity × |S| = 1.
        assert_eq!(batch.multiplicity_range(&tup![1]).unwrap(), (2, 3));
    }

    #[test]
    fn monus_operators_are_rejected() {
        let b = bag_db();
        let q = RaExpr::rel("R").difference(RaExpr::rel("S"));
        assert!(matches!(
            BagLineageBatch::compile(&q, &b, &pool(4)),
            Err(LineageError::Unsupported(_))
        ));
        let q = RaExpr::rel("R").intersect(RaExpr::rel("S"));
        assert!(matches!(
            BagLineageBatch::compile(&q, &b, &pool(4)),
            Err(LineageError::Unsupported(_))
        ));
    }

    #[test]
    fn weight_overflow_is_an_error_not_a_clamp() {
        // A 4-way product of huge multiplicities clamps the row weight at
        // usize::MAX; the bound must refuse, never report the clamp.
        let sets = database_from_literal([("R", vec!["a"], vec![])]);
        let mut b = BagDatabase::new(sets.schema().clone());
        b.insert_n("R", tup![1], usize::MAX / 2).unwrap();
        let q = RaExpr::rel("R")
            .product(RaExpr::rel("R"))
            .product(RaExpr::rel("R"))
            .product(RaExpr::rel("R"))
            .project(vec![0]);
        let mut batch = BagLineageBatch::compile(&q, &b, &pool(2)).unwrap();
        assert_eq!(
            batch.multiplicity_range(&tup![1]),
            Err(LineageError::CountOverflow)
        );
    }

    #[test]
    fn collapse_adds_multiplicities() {
        // Two copies of ⊥0 and one of 1: when ⊥0 = 1 the multiplicity of
        // (1) is 3.
        let sets = database_from_literal([("R", vec!["a"], vec![])]);
        let mut b = BagDatabase::new(sets.schema().clone());
        b.insert_n("R", tup![Value::null(0)], 2).unwrap();
        b.insert_n("R", tup![1], 1).unwrap();
        let q = RaExpr::rel("R");
        let mut batch = BagLineageBatch::compile(&q, &b, &pool(3)).unwrap();
        assert_eq!(batch.multiplicity_range(&tup![1]).unwrap(), (1, 3));
    }
}
