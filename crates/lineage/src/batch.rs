//! Compile a query's c-table lineage once; answer certainty, possibility
//! and model-counting questions per candidate off the diagrams.
//!
//! The pipeline is the symbolic counterpart of the world engines:
//!
//! 1. the query is rewritten by the null-aware logical optimizer (with
//!    instance statistics) and evaluated **once** over the c-table view of
//!    the database with the *aware* strategy — the engine instantiation
//!    whose conditions stay fully symbolic, so by the c-table
//!    representation theorem the resulting table `T` satisfies
//!    `Q(v(D)) = { v(s̄) | ⟨s̄, φ⟩ ∈ T, v ⊨ φ }` for **every** valuation;
//! 2. each row condition is normalised (forced-equality substitution, NNF,
//!    the canonicalizing simplifier shared with the grounding strategies)
//!    and compiled into a hash-consed multi-valued decision diagram over
//!    the finite-domain encoding of the database's nulls;
//! 3. a candidate tuple `t̄`'s *lineage* is `∨_rows (φ ∧ s̄ = t̄)` — then
//!    certainty is validity (the diagram is the `TRUE` terminal), certain
//!    falsity is unsatisfiability (`FALSE`), and `µ_k` is the exact model
//!    count over the support divided by `|pool|^|Null(D)|`, all read
//!    straight off the canonical form.
//!
//! No world is ever enumerated: the cost is polynomial in the diagram
//! sizes, which is what opens null counts (30+, thousands of worlds per
//! null) that enumeration can never reach.

use crate::encode::Encoding;
use crate::order::var_order;
use crate::store::{Forest, NodeId, FALSE, TRUE};
use crate::{LineageError, Result};
use certa_algebra::{optimize_with, Condition, RaExpr, Stats};
use certa_ctables::{eval_conditional, Cond, Strategy};
use certa_data::{Const, Database, Tuple, Valuation};
use std::collections::BTreeSet;

/// A compiled lineage batch for one `(query, database, pool)` triple.
pub struct LineageBatch {
    forest: Forest,
    encoding: Encoding,
    /// Result rows: the tuple, its raw (un-normalised) condition — kept for
    /// the generic-membership path, which evaluates symbolically outside
    /// the pool — and its compiled diagram.
    rows: Vec<(Tuple, Cond, NodeId)>,
    arity: usize,
    db_nulls: BTreeSet<certa_data::NullId>,
    /// Pool empty while nulls exist: the valuation space is empty, and the
    /// certainty quantifier is vacuous (mirrors the world engines).
    zero_worlds: bool,
    /// `false` for [`LineageBatch::compile_rows_only`] batches, which
    /// support only the symbolic (diagram-free) queries.
    diagrams_built: bool,
    /// World-space restrictions applied so far, as `(level, pool index)`
    /// pins. Candidate-equality diagrams built later by
    /// [`LineageBatch::lineage_of`] are restricted by the same pins, so the
    /// whole lineage is evaluated over the restricted space.
    restrictions: Vec<(u32, usize)>,
}

impl LineageBatch {
    /// Optimize, evaluate over c-tables (aware strategy, one pass), and
    /// compile every row condition over `pool`.
    ///
    /// # Errors
    ///
    /// * [`LineageError::Unsupported`] when the query uses operators or
    ///   predicates outside the symbolic fragment (÷, `Domᵏ`, `⋉⇑`,
    ///   syntactic `const(·)`/`null(·)` tests, literals containing marked
    ///   nulls) — callers fall back to world enumeration;
    /// * [`LineageError::Algebra`] for ill-formed queries.
    pub fn compile(query: &RaExpr, db: &Database, pool: &[Const]) -> Result<LineageBatch> {
        Self::compile_inner(query, db, pool, true)
    }

    /// Evaluate the query over c-tables and keep only the symbolic rows —
    /// no diagrams are normalised or built. Sufficient for
    /// [`LineageBatch::generic_membership`] (the 0–1-law limit), which
    /// never consults the pool encoding; the diagram-backed queries
    /// (`status`, `mu_counts`, …) panic on a rows-only batch.
    ///
    /// # Errors
    ///
    /// As [`LineageBatch::compile`].
    pub fn compile_rows_only(query: &RaExpr, db: &Database) -> Result<LineageBatch> {
        Self::compile_inner(query, db, &[], false)
    }

    fn compile_inner(
        query: &RaExpr,
        db: &Database,
        pool: &[Const],
        build_diagrams: bool,
    ) -> Result<LineageBatch> {
        check_symbolic_fragment(query)?;
        let stats = Stats::from_database(db);
        let optimized = optimize_with(query, db.schema(), &stats).map_err(LineageError::Algebra)?;
        let result = eval_conditional(&optimized, db, Strategy::Aware)?;
        let db_nulls = db.nulls();
        let zero_worlds = pool.is_empty() && !db_nulls.is_empty();

        // The variable order covers *all* database nulls (the valuation
        // space quantifies over them even when a condition never mentions
        // them), seeded by the conditions and the optimizer statistics.
        let conds: Vec<&Cond> = result.table().iter().map(|ct| &ct.cond).collect();
        let order = var_order(&db_nulls, conds, Some((&stats, db)));
        let encoding = Encoding::new(pool.to_vec(), order);
        let mut forest = Forest::new(encoding.domains());

        let mut rows = Vec::with_capacity(result.table().len());
        for ct in result.table().iter() {
            if !encoding.covers(&ct.cond) || !ct.tuple.nulls().is_subset(&db_nulls) {
                // A null outside the database can only come from the query
                // itself; its per-world value is not part of the valuation
                // space, so the symbolic reading would diverge from
                // enumeration.
                return Err(LineageError::Unsupported(
                    "query introduces nulls outside the database",
                ));
            }
            let node = if zero_worlds || !build_diagrams {
                FALSE
            } else {
                encoding.compile(&mut forest, &ct.cond)?
            };
            rows.push((ct.tuple.clone(), ct.cond.clone(), node));
        }
        Ok(LineageBatch {
            forest,
            encoding,
            rows,
            arity: result.table().arity(),
            db_nulls,
            zero_worlds,
            diagrams_built: build_diagrams,
            restrictions: Vec::new(),
        })
    }

    /// Apply the resolution ⊥ := value as a **world-space restriction**: every
    /// row diagram is replaced by its [`Forest::restrict`] cofactor at the
    /// null's level, and later candidate lineages are restricted the same
    /// way — no recompilation, no re-evaluation. After the call, `status`
    /// and the `mu_counts` *ratio* answer over the restricted valuation
    /// space, which is exactly the space of the database with the null
    /// resolved (absolute counts keep a factor of `|pool|` per pinned
    /// level, in both numerator and denominator).
    ///
    /// Returns `Ok(false)` — leaving the batch untouched — when the null is
    /// not encoded, the value is outside the pool, or the space is empty;
    /// the caller must recompile in those cases.
    ///
    /// # Errors
    ///
    /// [`LineageError::Exhausted`] when the governor trips mid-restriction.
    /// The batch is left exactly as it was — cofactors are staged and only
    /// committed on full success, so a cancelled refine never leaves half
    /// the rows restricted.
    pub fn restrict_null(&mut self, null: certa_data::NullId, value: &Const) -> Result<bool> {
        assert!(
            self.diagrams_built,
            "LineageBatch: diagram query on a rows-only batch"
        );
        if self.zero_worlds {
            return Ok(false);
        }
        let Some(level) = self.encoding.level(null) else {
            return Ok(false);
        };
        let Some(idx) = self.encoding.pool().iter().position(|c| c == value) else {
            return Ok(false);
        };
        let mut staged = Vec::with_capacity(self.rows.len());
        for i in 0..self.rows.len() {
            staged.push(self.forest.restrict(self.rows[i].2, level, idx)?);
        }
        for (row, node) in self.rows.iter_mut().zip(staged) {
            row.2 = node;
        }
        self.restrictions.push((level, idx));
        Ok(true)
    }

    /// Number of world-space restrictions applied so far.
    pub fn restriction_count(&self) -> usize {
        self.restrictions.len()
    }

    /// The output arity of the compiled query.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of result rows carrying lineage.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of distinct diagram nodes in the shared store — the
    /// size measure `Pipeline::explain` reports.
    pub fn diagram_size(&self) -> usize {
        self.forest.node_count()
    }

    /// The total valuation space, `|pool|^|Null(D)|`.
    ///
    /// # Errors
    ///
    /// [`LineageError::CountOverflow`] past `u128`.
    pub fn world_count(&self) -> Result<u128> {
        self.forest.valuation_count()
    }

    /// Compile the lineage diagram of a candidate tuple:
    /// `∨_rows (φ_row ∧ s̄_row = t̄)`.
    ///
    /// A candidate mentioning nulls outside the database can never equal a
    /// fully-valuated answer tuple, so its lineage is `FALSE` — exactly how
    /// the enumeration probe behaves.
    ///
    /// # Errors
    ///
    /// [`LineageError::Exhausted`] when the governor trips mid-build.
    pub fn lineage_of(&mut self, tuple: &Tuple) -> Result<NodeId> {
        assert!(
            self.diagrams_built,
            "LineageBatch: diagram query on a rows-only batch"
        );
        assert_eq!(
            tuple.arity(),
            self.arity,
            "LineageBatch: candidate arity mismatch"
        );
        if self.zero_worlds || !tuple.nulls().is_subset(&self.db_nulls) {
            return Ok(FALSE);
        }
        // Fold the most *absorbing* terms first: a row whose tuple is the
        // candidate itself contributes its bare condition (the matching
        // condition is a tautology), which usually subsumes the weaker
        // `φ ∧ s̄ = t̄` terms of sibling rows. Folding it first keeps every
        // intermediate disjunction near the final (small) diagram; the
        // naive left-to-right fold instead builds partial disjunctions like
        // `∨ᵢ (⊥ᵢ = ⊥_c ∧ …)` whose ordered diagrams must remember the set
        // of values seen before level `c` — exponential in width. The
        // order only affects diagram-construction cost, never the result.
        let candidate_nulls = tuple.nulls();
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        // Cached keys: `Tuple::nulls` allocates a fresh set per call, so
        // evaluate the rank once per row, not once per comparison.
        order.sort_by_cached_key(|&i| {
            let s = &self.rows[i].0;
            if s == tuple {
                0u8
            } else if !s.nulls().is_disjoint(&candidate_nulls) {
                1
            } else {
                2
            }
        });
        let mut out = FALSE;
        for i in order {
            let row_node = self.rows[i].2;
            if row_node == FALSE {
                continue;
            }
            let matching = Cond::tuple_eq(&self.rows[i].0, tuple);
            let mut eq_node = self.encoding.compile(&mut self.forest, &matching)?;
            // Restriction distributes over ∧/∨: pinning the equality
            // diagrams too makes the disjunction below the restriction of
            // the unrestricted lineage.
            for &(level, value) in &self.restrictions {
                eq_node = self.forest.restrict(eq_node, level, value)?;
            }
            let conjoined = self.forest.and(row_node, eq_node)?;
            out = self.forest.or(out, conjoined)?;
            if out == TRUE {
                break;
            }
        }
        Ok(out)
    }

    /// `(certain, possible)` for a candidate: whether `v(t̄) ∈ Q(v(D))`
    /// holds in every / some world of the pool. With an empty valuation
    /// space the universal quantifier is vacuously true and the existential
    /// one false, matching the world engines.
    pub fn status(&mut self, tuple: &Tuple) -> Result<(bool, bool)> {
        assert!(
            self.diagrams_built,
            "LineageBatch: diagram query on a rows-only batch"
        );
        if self.zero_worlds {
            return Ok((true, false));
        }
        let node = self.lineage_of(tuple)?;
        Ok((self.forest.is_valid(node), self.forest.is_satisfiable(node)))
    }

    /// `true` iff the candidate is an answer in every world of the pool.
    pub fn is_certain(&mut self, tuple: &Tuple) -> Result<bool> {
        Ok(self.status(tuple)?.0)
    }

    /// `true` iff the candidate is an answer in no world of the pool.
    pub fn is_certainly_false(&mut self, tuple: &Tuple) -> Result<bool> {
        Ok(!self.status(tuple)?.1)
    }

    /// Exact `(support, total)` valuation counts for a candidate — the
    /// numerator and denominator of `µ_k` when the pool is the canonical
    /// `k`-prefix.
    ///
    /// # Errors
    ///
    /// [`LineageError::CountOverflow`] when a count exceeds `u128`.
    pub fn mu_counts(&mut self, tuple: &Tuple) -> Result<(u128, u128)> {
        assert!(
            self.diagrams_built,
            "LineageBatch: diagram query on a rows-only batch"
        );
        if self.zero_worlds {
            return Ok((0, 0));
        }
        let node = self.lineage_of(tuple)?;
        let support = self.forest.count_models(node)?;
        let total = self.forest.valuation_count()?;
        Ok((support, total))
    }

    /// Membership under a *generic* (injective, fresh) valuation — the
    /// symbolic route to the 0–1 law: the limit `µ(Q, D, ā)` is 1 exactly
    /// when the lineage holds under a bijective fresh valuation of the
    /// nulls, which coincides with naïve-evaluation membership.
    pub fn generic_membership(&self, tuple: &Tuple) -> bool {
        let mut nulls = self.db_nulls.clone();
        nulls.extend(tuple.nulls());
        let mut avoid: BTreeSet<Const> = tuple.consts();
        for (s, cond, _) in &self.rows {
            avoid.extend(s.consts());
            cond.consts(&mut avoid);
        }
        avoid.extend(self.encoding.pool().iter().cloned());
        let v = Valuation::bijective_fresh(&nulls, &avoid);
        let target = v.apply_tuple(tuple);
        self.rows
            .iter()
            .any(|(s, cond, _)| cond.eval_under(&v) && v.apply_tuple(s) == target)
    }
}

/// Reject queries outside the fragment whose symbolic reading provably
/// coincides with per-world evaluation: the extended operators have no
/// conditional semantics (the engine rejects them too), `const(·)`/
/// `null(·)` selection predicates are *syntactic* tests that per-world
/// evaluation resolves differently (every world is null-free), and query
/// literals carrying marked nulls are never valuated by the world sources.
fn check_symbolic_fragment(expr: &RaExpr) -> Result<()> {
    match expr {
        RaExpr::Relation(_) => Ok(()),
        RaExpr::Literal(rel) => {
            if rel.nulls().is_empty() {
                Ok(())
            } else {
                Err(LineageError::Unsupported(
                    "literal relations with marked nulls",
                ))
            }
        }
        RaExpr::Select(e, cond) => {
            check_condition(cond)?;
            check_symbolic_fragment(e)
        }
        RaExpr::Project(e, _) => check_symbolic_fragment(e),
        RaExpr::Product(l, r)
        | RaExpr::Union(l, r)
        | RaExpr::Intersect(l, r)
        | RaExpr::Difference(l, r) => {
            check_symbolic_fragment(l)?;
            check_symbolic_fragment(r)
        }
        RaExpr::Divide(..) => Err(LineageError::Unsupported("division")),
        RaExpr::DomPower(_) => Err(LineageError::Unsupported("Dom^k")),
        RaExpr::AntiSemiJoinUnify(..) => Err(LineageError::Unsupported("anti-semijoin (⋉⇑)")),
    }
}

/// The bag fragment is stricter: difference and intersection are rejected
/// too, because bag monus and min act on *summed* multiplicities and have
/// no row-wise weighted reading.
pub(crate) fn check_symbolic_fragment_for_bags(expr: &RaExpr) -> Result<()> {
    match expr {
        RaExpr::Difference(..) => Err(LineageError::Unsupported(
            "difference under bag semantics (monus is not row-wise)",
        )),
        RaExpr::Intersect(..) => Err(LineageError::Unsupported(
            "intersection under bag semantics (min is not row-wise)",
        )),
        RaExpr::Select(e, cond) => {
            check_condition(cond)?;
            check_symbolic_fragment_for_bags(e)
        }
        RaExpr::Project(e, _) => check_symbolic_fragment_for_bags(e),
        RaExpr::Product(l, r) | RaExpr::Union(l, r) => {
            check_symbolic_fragment_for_bags(l)?;
            check_symbolic_fragment_for_bags(r)
        }
        other => check_symbolic_fragment(other),
    }
}

fn check_condition(cond: &Condition) -> Result<()> {
    match cond {
        Condition::True | Condition::False | Condition::Eq(..) | Condition::Neq(..) => Ok(()),
        Condition::IsConst(_) | Condition::IsNull(_) => Err(LineageError::Unsupported(
            "syntactic const(·)/null(·) predicates",
        )),
        Condition::And(a, b) | Condition::Or(a, b) => {
            check_condition(a)?;
            check_condition(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_data::{database_from_literal, tup, Value};

    fn pool(k: i64) -> Vec<Const> {
        (0..k).map(Const::Int).collect()
    }

    fn diff_db() -> Database {
        database_from_literal([
            ("R", vec!["a"], vec![tup![1]]),
            ("S", vec!["a"], vec![tup![Value::null(0)]]),
        ])
    }

    #[test]
    fn difference_example_certainty_and_counts() {
        // R = {1}, S = {⊥}: (1) is an answer of R − S iff ⊥ ≠ 1.
        let db = diff_db();
        let q = RaExpr::rel("R").difference(RaExpr::rel("S"));
        let mut batch = LineageBatch::compile(&q, &db, &pool(4)).unwrap();
        assert_eq!(batch.status(&tup![1]).unwrap(), (false, true));
        // µ over a 4-pool containing 1: 3 of 4 valuations keep the answer.
        assert_eq!(batch.mu_counts(&tup![1]).unwrap(), (3, 4));
        // (2) is never an answer: not in R.
        assert_eq!(batch.status(&tup![2]).unwrap(), (false, false));
        assert_eq!(batch.mu_counts(&tup![2]).unwrap(), (0, 4));
    }

    #[test]
    fn certain_answers_read_off_validity() {
        let db = database_from_literal([("R", vec!["a"], vec![tup![1], tup![Value::null(0)]])]);
        let q = RaExpr::rel("R");
        let mut batch = LineageBatch::compile(&q, &db, &pool(3)).unwrap();
        // 1 is literally present: certain. The null candidate too (it maps
        // to itself under every valuation).
        assert!(batch.is_certain(&tup![1]).unwrap());
        assert!(batch.is_certain(&tup![Value::null(0)]).unwrap());
        assert!(batch.is_certainly_false(&tup![7]).unwrap());
    }

    #[test]
    fn or_tautology_is_certain_symbolically() {
        // σ(a = 1 ∨ a ≠ 1)(S) keeps the null tuple in every world.
        let db = diff_db();
        let cond = Condition::eq_const(0, 1).or(Condition::neq_const(0, 1));
        let q = RaExpr::rel("S").select(cond);
        let mut batch = LineageBatch::compile(&q, &db, &pool(4)).unwrap();
        assert!(batch.is_certain(&tup![Value::null(0)]).unwrap());
    }

    #[test]
    fn intersection_certainty_and_counts() {
        // R = {1, ⊥0}, S = {1, 2}: R ∩ S certainly contains 1; the null
        // candidate is an answer exactly when v(⊥0) ∈ {1, 2}.
        let db = database_from_literal([
            ("R", vec!["a"], vec![tup![1], tup![Value::null(0)]]),
            ("S", vec!["a"], vec![tup![1], tup![2]]),
        ]);
        let q = RaExpr::rel("R").intersect(RaExpr::rel("S"));
        let mut batch = LineageBatch::compile(&q, &db, &pool(4)).unwrap();
        assert_eq!(batch.status(&tup![1]).unwrap(), (true, true));
        assert_eq!(batch.status(&tup![Value::null(0)]).unwrap(), (false, true));
        // Over the pool {0, 1, 2, 3}: 2 of 4 valuations hit {1, 2}.
        assert_eq!(batch.mu_counts(&tup![Value::null(0)]).unwrap(), (2, 4));
        assert_eq!(batch.status(&tup![3]).unwrap(), (false, false));
    }

    #[test]
    fn candidate_with_foreign_null_is_nowhere() {
        let db = diff_db();
        let q = RaExpr::rel("R");
        let mut batch = LineageBatch::compile(&q, &db, &pool(3)).unwrap();
        assert_eq!(batch.status(&tup![Value::null(9)]).unwrap(), (false, false));
    }

    #[test]
    fn unsupported_operators_are_rejected_up_front() {
        let db = diff_db();
        let q = RaExpr::rel("R").anti_semijoin_unify(RaExpr::rel("S"));
        assert!(matches!(
            LineageBatch::compile(&q, &db, &pool(3)),
            Err(LineageError::Unsupported(_))
        ));
        let q = RaExpr::rel("R").select(Condition::IsNull(0));
        assert!(matches!(
            LineageBatch::compile(&q, &db, &pool(3)),
            Err(LineageError::Unsupported(_))
        ));
        let lit = certa_data::Relation::from_tuples(vec![tup![Value::null(3)]]);
        let q = RaExpr::rel("R").union(RaExpr::Literal(lit));
        assert!(matches!(
            LineageBatch::compile(&q, &db, &pool(3)),
            Err(LineageError::Unsupported(_))
        ));
    }

    #[test]
    fn zero_worlds_mirror_the_vacuous_quantifiers() {
        let db = diff_db();
        let q = RaExpr::rel("S");
        let mut batch = LineageBatch::compile(&q, &db, &[]).unwrap();
        assert_eq!(batch.status(&tup![1]).unwrap(), (true, false));
        assert_eq!(batch.mu_counts(&tup![1]).unwrap(), (0, 0));
    }

    #[test]
    fn restriction_agrees_with_recompiling_on_the_resolved_db() {
        // R = {1}, S = {⊥0}: resolving ⊥0 flips the candidate 1 between
        // certainly-false (⊥0 := 1) and certain (⊥0 := 2).
        let q = RaExpr::rel("R").difference(RaExpr::rel("S"));
        for resolved in [1i64, 2] {
            let mut restricted = LineageBatch::compile(&q, &diff_db(), &pool(4)).unwrap();
            assert!(restricted.restrict_null(0, &Const::Int(resolved)).unwrap());
            assert_eq!(restricted.restriction_count(), 1);

            let mut db = diff_db();
            assert_eq!(db.resolve_null(0, Const::Int(resolved)), 1);
            let mut fresh = LineageBatch::compile(&q, &db, &pool(4)).unwrap();

            for t in [tup![1], tup![2], tup![Value::null(0)]] {
                assert_eq!(
                    restricted.status(&t).unwrap(),
                    fresh.status(&t).unwrap(),
                    "⊥0 := {resolved}, {t}"
                );
                // µ ratios agree even though the restricted batch keeps the
                // pinned level's factor in both counts: cross-multiply.
                let (s1, t1) = restricted.mu_counts(&t).unwrap();
                let (s2, t2) = fresh.mu_counts(&t).unwrap();
                assert_eq!(s1 * t2, s2 * t1, "⊥0 := {resolved}, {t}");
            }
        }
    }

    #[test]
    fn restriction_rejects_out_of_pool_values_and_foreign_nulls() {
        let q = RaExpr::rel("S");
        let mut batch = LineageBatch::compile(&q, &diff_db(), &pool(3)).unwrap();
        assert!(!batch.restrict_null(9, &Const::Int(1)).unwrap()); // not encoded
        assert!(!batch.restrict_null(0, &Const::Int(99)).unwrap()); // outside pool
        assert_eq!(batch.restriction_count(), 0);
        // The batch still answers as before.
        assert!(batch.is_certain(&tup![Value::null(0)]).unwrap());
    }

    #[test]
    fn stacked_restrictions_compose() {
        // R = {⊥0, ⊥1}; candidate 2 is certain iff some null resolves to 2.
        let db = database_from_literal([(
            "R",
            vec!["a"],
            vec![tup![Value::null(0)], tup![Value::null(1)]],
        )]);
        let q = RaExpr::rel("R");
        let mut batch = LineageBatch::compile(&q, &db, &pool(4)).unwrap();
        assert_eq!(batch.status(&tup![2]).unwrap(), (false, true));
        assert!(batch.restrict_null(0, &Const::Int(3)).unwrap());
        assert_eq!(batch.status(&tup![2]).unwrap(), (false, true));
        assert!(batch.restrict_null(1, &Const::Int(2)).unwrap());
        assert_eq!(batch.status(&tup![2]).unwrap(), (true, true));
        assert_eq!(batch.status(&tup![3]).unwrap(), (true, true));
        assert_eq!(batch.status(&tup![1]).unwrap(), (false, false));
        assert_eq!(batch.restriction_count(), 2);
    }

    #[test]
    fn generic_membership_matches_naive_evaluation() {
        let db = diff_db();
        let q = RaExpr::rel("R").difference(RaExpr::rel("S"));
        let batch = LineageBatch::compile(&q, &db, &pool(4)).unwrap();
        let naive = certa_algebra::naive_eval(&q, &db).unwrap();
        for t in [tup![1], tup![2], tup![Value::null(0)]] {
            assert_eq!(batch.generic_membership(&t), naive.contains(&t), "{t}");
        }
    }

    #[test]
    fn thirty_plus_independent_nulls_compile_and_count() {
        // A configuration enumeration can never reach: 32 independent
        // nulls over a 4-pool is 2^64 worlds.
        let rows: Vec<Tuple> = (0..32u32).map(|i| tup![Value::null(i)]).collect();
        let db = database_from_literal([("R", vec!["a"], rows)]);
        let q = RaExpr::rel("R");
        let mut batch = LineageBatch::compile(&q, &db, &pool(4)).unwrap();
        assert_eq!(batch.world_count().unwrap(), 1u128 << 64);
        // ⊥0 is certain (it is its own witness in every world).
        assert!(batch.is_certain(&tup![Value::null(0)]).unwrap());
        // The constant 0 is possible (some null can take it) but not
        // certain, and its exact support is 4^32 − 3^32.
        let (support, total) = batch.mu_counts(&tup![0]).unwrap();
        assert_eq!(total, 1u128 << 64);
        assert_eq!(support, (1u128 << 64) - 3u128.pow(32));
    }
}
