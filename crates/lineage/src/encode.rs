//! Finite-domain encoding of marked nulls, and the condition compiler.
//!
//! Worlds are valuations `v : Null(D) → pool` (the same bounded valuation
//! space the `certa-certain` world engines enumerate). The encoding maps
//! every null to one *multi-valued variable* whose domain is the pool — so
//! variables are `k`-valued, not binary, and a diagram over the encoding
//! represents a set of worlds exactly.
//!
//! [`Encoding::compile`] translates a [`Cond`] into a diagram:
//!
//! * `⊥ᵢ = c` with `c` in the pool becomes the single-variable test
//!   `xᵢ = index(c)`; with `c` **outside** the pool it is `false` (no pool
//!   valuation can reach `c`), mirroring `Cond::eval_under` over pool
//!   valuations;
//! * `⊥ᵢ = ⊥ⱼ` becomes the diagonal diagram over the two levels;
//! * constant atoms fold syntactically; connectives go through the
//!   forest's apply cache.
//!
//! Conditions are normalised first — negation normal form, forced-equality
//! substitution and the canonicalizing [`Cond::simplify`] shared with the
//! c-table strategies — so the compiler usually sees far fewer atoms than
//! the raw lineage carries.

use crate::store::{Forest, NodeId, FALSE, TRUE};
use crate::Result;
use certa_ctables::cond::CondAtom;
use certa_ctables::Cond;
use certa_data::{Const, NullId, Value};
use certa_logic::Truth3;
use std::collections::HashMap;

/// The variable encoding: a constant pool plus an ordered list of nulls
/// (the diagram's variable order, chosen by [`crate::order`]).
#[derive(Debug, Clone)]
pub struct Encoding {
    pool: Vec<Const>,
    index: HashMap<Const, usize>,
    nulls: Vec<NullId>,
    level_of: HashMap<NullId, u32>,
}

impl Encoding {
    /// Build an encoding of `nulls` (in diagram order) over `pool`.
    ///
    /// # Panics
    ///
    /// Panics if the pool contains duplicate constants or the order
    /// contains duplicate nulls.
    pub fn new(pool: Vec<Const>, nulls: Vec<NullId>) -> Encoding {
        let mut index = HashMap::with_capacity(pool.len());
        for (i, c) in pool.iter().enumerate() {
            let previous = index.insert(c.clone(), i);
            assert!(previous.is_none(), "Encoding: duplicate pool constant {c}");
        }
        let mut level_of = HashMap::with_capacity(nulls.len());
        for (level, n) in nulls.iter().enumerate() {
            let previous = level_of.insert(*n, level as u32);
            assert!(previous.is_none(), "Encoding: duplicate null ⊥{n}");
        }
        Encoding {
            pool,
            index,
            nulls,
            level_of,
        }
    }

    /// The constant pool.
    pub fn pool(&self) -> &[Const] {
        &self.pool
    }

    /// The nulls in diagram (level) order.
    pub fn nulls(&self) -> &[NullId] {
        &self.nulls
    }

    /// Per-level domain sizes for the forest. Every null currently ranges
    /// over the full pool — its slice is the whole enumeration — which is
    /// what makes diagram model counts line up with the world engines'
    /// `|pool|^|Null(D)|` valuation space; the store itself supports
    /// heterogeneous domains for narrower encodings.
    pub fn domains(&self) -> Vec<usize> {
        vec![self.pool.len(); self.nulls.len()]
    }

    /// The level of a null, if it is encoded.
    pub fn level(&self, null: NullId) -> Option<u32> {
        self.level_of.get(&null).copied()
    }

    /// `true` iff every null of the condition is encoded.
    pub fn covers(&self, cond: &Cond) -> bool {
        let mut nulls = std::collections::BTreeSet::new();
        cond.nulls(&mut nulls);
        nulls.iter().all(|n| self.level_of.contains_key(n))
    }

    /// Compile a condition into a diagram over `forest` (which must have
    /// been created with [`Encoding::domains`]). The condition is
    /// normalised first: forced equalities are substituted (and re-asserted
    /// as atoms, so the model set is unchanged), negations are pushed to
    /// the atoms, and the canonicalizing simplifier folds what it can.
    ///
    /// # Errors
    ///
    /// [`crate::LineageError::Exhausted`] when the resource governor's
    /// node cap (or another budget) trips mid-compilation.
    ///
    /// # Panics
    ///
    /// Panics if the condition mentions a null outside the encoding — use
    /// [`Encoding::covers`] to pre-check foreign nulls.
    pub fn compile(&self, forest: &mut Forest, cond: &Cond) -> Result<NodeId> {
        let normalized = self.normalize(cond);
        self.compile_raw(forest, &normalized)
    }

    /// The shared normalizer: forced-equality substitution + NNF +
    /// simplification, all model-preserving.
    pub fn normalize(&self, cond: &Cond) -> Cond {
        let forced = cond.forced_equalities();
        let substituted = if forced.is_empty() {
            cond.clone()
        } else {
            // Substituting a forced equality `⊥ = c` rewrites every other
            // atom, but the forcing atom itself would fold to `c = c`;
            // re-asserting the equalities keeps the model set identical.
            let mut out = cond.substitute(&forced);
            for (null, constant) in forced.iter() {
                out = out.and(Cond::eq(Value::Null(null), Value::Const(constant.clone())));
            }
            out
        };
        substituted.nnf().simplify()
    }

    fn compile_raw(&self, forest: &mut Forest, cond: &Cond) -> Result<NodeId> {
        match cond {
            // `eval_under` reads a ground `u` as "not satisfied", and the
            // lineage pipeline never produces one (the aware strategy keeps
            // conditions symbolic); mirror `eval_under` defensively.
            Cond::Truth(Truth3::True) => Ok(TRUE),
            Cond::Truth(_) => Ok(FALSE),
            Cond::Atom(atom) => self.compile_atom(forest, atom),
            Cond::Not(c) => {
                let inner = self.compile_raw(forest, c)?;
                forest.not(inner)
            }
            Cond::And(a, b) => {
                let (a, b) = (self.compile_raw(forest, a)?, self.compile_raw(forest, b)?);
                forest.and(a, b)
            }
            Cond::Or(a, b) => {
                let (a, b) = (self.compile_raw(forest, a)?, self.compile_raw(forest, b)?);
                forest.or(a, b)
            }
        }
    }

    fn compile_atom(&self, forest: &mut Forest, atom: &CondAtom) -> Result<NodeId> {
        let (eq, a, b) = match atom {
            CondAtom::Eq(a, b) => (true, a, b),
            CondAtom::Neq(a, b) => (false, a, b),
        };
        let positive = self.compile_eq(forest, a, b)?;
        if eq {
            Ok(positive)
        } else {
            forest.not(positive)
        }
    }

    fn compile_eq(&self, forest: &mut Forest, a: &Value, b: &Value) -> Result<NodeId> {
        match (a, b) {
            (Value::Const(x), Value::Const(y)) => {
                if x == y {
                    Ok(TRUE)
                } else {
                    Ok(FALSE)
                }
            }
            (Value::Null(n), Value::Const(c)) | (Value::Const(c), Value::Null(n)) => {
                let level = self.level_or_panic(*n);
                match self.index.get(c) {
                    Some(&value) => forest.var_eq_value(level, value),
                    // A constant outside the pool is unreachable by any
                    // pool valuation.
                    None => Ok(FALSE),
                }
            }
            (Value::Null(n), Value::Null(m)) => {
                if n == m {
                    Ok(TRUE)
                } else {
                    let (ln, lm) = (self.level_or_panic(*n), self.level_or_panic(*m));
                    forest.vars_equal(ln, lm)
                }
            }
        }
    }

    fn level_or_panic(&self, n: NullId) -> u32 {
        *self
            .level_of
            .get(&n)
            .unwrap_or_else(|| panic!("Encoding::compile: null ⊥{n} is not encoded"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_data::valuation::all_valuations;
    use certa_data::Valuation;
    use std::collections::BTreeSet;

    fn pool(k: i64) -> Vec<Const> {
        (0..k).map(Const::Int).collect()
    }

    fn null(i: NullId) -> Value {
        Value::null(i)
    }

    fn int(i: i64) -> Value {
        Value::int(i)
    }

    /// Brute-force check: the diagram's models are exactly the valuations
    /// satisfying the condition.
    fn agrees_with_enumeration(cond: &Cond, nulls: &[NullId], k: i64) {
        let enc = Encoding::new(pool(k), nulls.to_vec());
        let mut forest = Forest::new(enc.domains());
        let node = enc.compile(&mut forest, cond).unwrap();
        let set: BTreeSet<NullId> = nulls.iter().copied().collect();
        let mut expected: u128 = 0;
        for v in all_valuations(&set, enc.pool()) {
            if cond.eval_under(&v) {
                expected += 1;
            }
        }
        assert_eq!(
            forest.count_models(node).unwrap(),
            expected,
            "count mismatch for {cond}"
        );
        assert_eq!(
            forest.is_valid(node),
            expected == forest.valuation_count().unwrap(),
            "validity mismatch for {cond}"
        );
        assert_eq!(
            forest.is_satisfiable(node),
            expected > 0,
            "satisfiability mismatch for {cond}"
        );
    }

    #[test]
    fn atoms_match_pool_semantics() {
        agrees_with_enumeration(&Cond::eq(null(0), int(1)), &[0], 4);
        agrees_with_enumeration(&Cond::neq(null(0), int(1)), &[0], 4);
        agrees_with_enumeration(&Cond::eq(null(0), null(1)), &[0, 1], 3);
        agrees_with_enumeration(&Cond::neq(null(0), null(1)), &[0, 1], 3);
        // A constant outside the pool: unsatisfiable equality.
        agrees_with_enumeration(&Cond::eq(null(0), int(99)), &[0], 4);
        agrees_with_enumeration(&Cond::neq(null(0), int(99)), &[0], 4);
    }

    #[test]
    fn tautologies_and_contradictions_are_canonical() {
        let enc = Encoding::new(pool(5), vec![0]);
        let mut forest = Forest::new(enc.domains());
        let taut = Cond::eq(null(0), int(1)).or(Cond::neq(null(0), int(1)));
        assert_eq!(enc.compile(&mut forest, &taut).unwrap(), TRUE);
        let contra = Cond::eq(null(0), int(1)).and(Cond::eq(null(0), int(2)));
        assert_eq!(enc.compile(&mut forest, &contra).unwrap(), FALSE);
    }

    #[test]
    fn compound_conditions_agree_with_enumeration() {
        let c = Cond::eq(null(0), int(1))
            .and(Cond::neq(null(1), null(0)))
            .or(Cond::eq(null(2), int(0)).not());
        agrees_with_enumeration(&c, &[0, 1, 2], 3);
        let c = Cond::eq(null(0), null(1))
            .and(Cond::eq(null(1), null(2)))
            .and(Cond::neq(null(0), null(2)));
        agrees_with_enumeration(&c, &[0, 1, 2], 4);
    }

    #[test]
    fn variable_order_does_not_change_counts() {
        let c = Cond::eq(null(0), null(2)).and(Cond::neq(null(1), int(0)));
        for order in [vec![0u32, 1, 2], vec![2, 1, 0], vec![1, 2, 0]] {
            let enc = Encoding::new(pool(3), order.clone());
            let mut forest = Forest::new(enc.domains());
            let node = enc.compile(&mut forest, &c).unwrap();
            assert_eq!(forest.count_models(node).unwrap(), 6, "order {order:?}");
        }
    }

    #[test]
    fn normalizer_substitutes_forced_equalities() {
        let enc = Encoding::new(pool(4), vec![0, 1]);
        // ⊥0 = 1 ∧ ⊥0 = ⊥1: forced equalities pin both nulls to 1.
        let c = Cond::eq(null(0), int(1)).and(Cond::eq(null(0), null(1)));
        let n = enc.normalize(&c);
        // The model set is preserved...
        let set: BTreeSet<NullId> = [0, 1].into_iter().collect();
        for v in all_valuations(&set, enc.pool()) {
            assert_eq!(n.eval_under(&v), c.eval_under(&v));
        }
        // ...and the compiled diagram counts exactly one model.
        let mut forest = Forest::new(enc.domains());
        let node = enc.compile(&mut forest, &c).unwrap();
        assert_eq!(forest.count_models(node).unwrap(), 1);
    }

    #[test]
    fn foreign_nulls_are_detectable() {
        let enc = Encoding::new(pool(3), vec![0]);
        let c = Cond::eq(null(7), int(1));
        assert!(!enc.covers(&c));
        assert!(enc.covers(&Cond::eq(null(0), int(1))));
    }

    #[test]
    fn models_round_trip_through_valuations() {
        // Extract a witness from the diagram and check it satisfies the
        // condition as a valuation.
        let enc = Encoding::new(pool(4), vec![0, 1]);
        let mut forest = Forest::new(enc.domains());
        let c = Cond::eq(null(0), null(1)).and(Cond::neq(null(0), int(0)));
        let node = enc.compile(&mut forest, &c).unwrap();
        let model = forest.any_model(node).expect("satisfiable");
        let mut v = Valuation::new();
        for (level, value) in model.iter().enumerate() {
            v.assign(enc.nulls()[level], enc.pool()[*value].clone());
        }
        assert!(c.eval_under(&v));
    }
}
