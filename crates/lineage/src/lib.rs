//! # certa-lineage
//!
//! Knowledge compilation for c-table lineage: the symbolic alternative to
//! possible-world enumeration.
//!
//! The c-table instantiation of the shared physical engine (§3, §4.2,
//! Theorem 4.9 of the survey) already attaches to every candidate tuple a
//! Boolean *condition* over null valuations — yet the exact certain-answer
//! machinery of `certa-certain` historically decided those conditions by
//! enumerating every possible world, exponential in the number of nulls.
//! This crate compiles the conditions instead, into **reduced, ordered,
//! hash-consed decision diagrams** over a finite-domain encoding of the
//! nulls (each null is a multi-valued variable ranging over the constant
//! pool — an MDD/BDD hybrid, not a binary encoding). On the canonical
//! form:
//!
//! * certainty is a tautology check (the diagram is the `TRUE` terminal),
//! * certain falsity is unsatisfiability (`FALSE`),
//! * `µ_k` is an exact model-count ratio in `u128`,
//! * bag multiplicity bounds `□Q`/`◇Q` are terminal min/max of an
//!   arithmetic diagram,
//!
//! all without visiting a single world — which is what opens instances
//! with dozens to thousands of nulls that enumeration can never reach.
//!
//! Module map:
//!
//! * [`store`] — the hash-consed node store: apply/negation caches,
//!   reduction, canonical terminals, memoized `u128` model counting;
//! * [`encode`] — the finite-domain variable encoding and the condition
//!   compiler, sharing `certa-ctables`' normalizer (NNF, constant folding,
//!   forced-equality substitution, the canonicalizing simplifier);
//! * [`order`] — deterministic variable-ordering heuristics seeded by
//!   `certa-algebra`'s optimizer statistics (null-dependence info);
//! * [`batch`] — [`LineageBatch`]: evaluate the query **once** over
//!   c-tables (aware strategy), compile per-candidate lineage, answer
//!   certain/possible/count queries;
//! * [`bag`] — [`BagLineageBatch`]: weighted conditional rows and
//!   arithmetic decision diagrams for exact multiplicity ranges on the
//!   monus-free fragment.
//!
//! `certa-certain` builds the `*_lineage` entry points on top of this
//! crate, and `certa::Pipeline` dispatches between enumeration (few
//! worlds) and lineage (beyond a threshold) per instance.

pub mod bag;
pub mod batch;
pub mod encode;
pub mod order;
pub mod store;

pub use bag::{BagLineageBatch, WeightedCondAnn};
pub use batch::LineageBatch;
pub use encode::Encoding;
pub use order::var_order;
pub use store::{Forest, NodeId, FALSE, TRUE};

/// Errors raised by lineage compilation and counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageError {
    /// The query lies outside the fragment whose symbolic reading provably
    /// coincides with per-world evaluation (extended operators, syntactic
    /// `const`/`null` predicates, null-bearing literals, bag monus).
    /// Callers fall back to world enumeration.
    Unsupported(&'static str),
    /// A model count exceeded `u128` — the symbolic sibling of the world
    /// engines' `TooManyWorlds`: overflow surfaces as a value, never as a
    /// wrap.
    CountOverflow,
    /// An error bubbled up from conditional evaluation.
    CTable(certa_ctables::CtError),
    /// An error bubbled up from the algebra layer.
    Algebra(certa_algebra::AlgebraError),
    /// The resource governor refused further work — node-cap reached,
    /// deadline passed, or cancellation raised mid-compilation. Like
    /// [`LineageError::CountOverflow`], exhaustion is a value, never a
    /// wrong answer; unlike [`LineageError::Unsupported`], it is **not** a
    /// fragment boundary, so the dispatcher must not retry enumeration
    /// under the same spent budget as if the query were out of fragment.
    Exhausted(certa_data::GovernorError),
}

impl std::fmt::Display for LineageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineageError::Unsupported(what) => {
                write!(f, "lineage compilation does not support {what}")
            }
            LineageError::CountOverflow => {
                write!(f, "exact model count exceeds u128")
            }
            LineageError::CTable(e) => write!(f, "{e}"),
            LineageError::Algebra(e) => write!(f, "{e}"),
            LineageError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LineageError {}

impl From<certa_ctables::CtError> for LineageError {
    fn from(e: certa_ctables::CtError) -> Self {
        match e {
            // The engine's rejection of extended operators is a fragment
            // boundary, not a failure: map it onto the fallback-able
            // variant.
            certa_ctables::CtError::UnsupportedOperator(op) => LineageError::Unsupported(op),
            other => LineageError::CTable(other),
        }
    }
}

impl From<certa_algebra::AlgebraError> for LineageError {
    fn from(e: certa_algebra::AlgebraError) -> Self {
        match e {
            certa_algebra::AlgebraError::UnsupportedOperator(op) => LineageError::Unsupported(op),
            // Normalize governor trips into the one `Exhausted` variant so
            // trip detection never has to chase nesting.
            certa_algebra::AlgebraError::Governor(g) => LineageError::Exhausted(g),
            other => LineageError::Algebra(other),
        }
    }
}

impl LineageError {
    /// `true` when the error marks a fragment boundary rather than a
    /// failure — the dispatcher falls back to enumeration on these.
    pub fn is_unsupported(&self) -> bool {
        matches!(self, LineageError::Unsupported(_))
    }

    /// The governor trip behind this error, if that is what it is — either
    /// a direct [`LineageError::Exhausted`] or a trip that surfaced through
    /// the algebra layer.
    pub fn governor_trip(&self) -> Option<&certa_data::GovernorError> {
        match self {
            LineageError::Exhausted(e) => Some(e),
            LineageError::Algebra(e) => e.governor_trip(),
            _ => None,
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LineageError>;
