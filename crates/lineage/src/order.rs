//! Variable-ordering heuristics for the diagram encoding.
//!
//! Decision-diagram size is notoriously order-sensitive: variables that
//! interact (appear in the same atoms, or in conditions produced by the
//! same join) should sit on adjacent levels. Two deterministic signals are
//! combined:
//!
//! * **Instance statistics** ([`certa_algebra::Stats`]): nulls hosted by
//!   the same base relation co-occur in the conditions the c-table engine
//!   emits (a join against a null key conjoins atoms over that relation's
//!   nulls), so same-relation nulls are clustered, smaller relations first
//!   — the same null-dependence information the logical optimizer uses to
//!   sink null-free leaves.
//! * **Condition frequency**: within a cluster, nulls mentioned by more
//!   compiled conditions come first, so the shared prefix of the diagrams
//!   folds early.
//!
//! Ties break on the null id, so the order — and with it every diagram,
//! count and explain report — is fully deterministic.

use certa_algebra::Stats;
use certa_ctables::Cond;
use certa_data::{Database, NullId};
use std::collections::{BTreeMap, BTreeSet};

/// Order `nulls` for diagram levels using condition occurrence counts and,
/// when available, instance statistics over `db` (see the module docs).
/// Every null of `nulls` appears exactly once in the result; nulls no
/// condition mentions go last (they are untested levels that only
/// contribute domain-size factors to counts).
pub fn var_order<'a>(
    nulls: &BTreeSet<NullId>,
    conds: impl IntoIterator<Item = &'a Cond>,
    stats: Option<(&Stats, &Database)>,
) -> Vec<NullId> {
    // Occurrence counts across the compiled conditions.
    let mut frequency: BTreeMap<NullId, usize> = BTreeMap::new();
    for cond in conds {
        let mut mentioned = BTreeSet::new();
        cond.nulls(&mut mentioned);
        for n in mentioned {
            *frequency.entry(n).or_insert(0) += 1;
        }
    }
    // Cluster rank: nulls grouped by their (smallest) host relation,
    // relations ranked by cardinality then name. Nulls the statistics
    // cannot place — or without statistics at all — share one last cluster.
    let cluster = stats.map(|(stats, db)| cluster_ranks(stats, db));
    let rank_of = |n: &NullId| -> (usize, std::cmp::Reverse<usize>, NullId) {
        let cluster_rank = cluster
            .as_ref()
            .and_then(|c| c.get(n).copied())
            .unwrap_or(usize::MAX);
        let freq = frequency.get(n).copied().unwrap_or(0);
        (cluster_rank, std::cmp::Reverse(freq), *n)
    };
    let mut order: Vec<NullId> = nulls.iter().copied().collect();
    order.sort_by_key(rank_of);
    order
}

/// Map every null of a null-bearing relation to its cluster rank.
fn cluster_ranks(stats: &Stats, db: &Database) -> BTreeMap<NullId, usize> {
    // Deterministic relation ranking: cardinality ascending, then name.
    let mut relations: Vec<&str> = stats.null_relations().collect();
    relations.sort_by_key(|name| (stats.cardinality(name).unwrap_or(usize::MAX), *name));
    let mut ranks = BTreeMap::new();
    for (rank, name) in relations.iter().enumerate() {
        let Ok(rel) = db.relation(name) else {
            continue;
        };
        for tuple in rel.iter() {
            for n in tuple.nulls() {
                ranks.entry(n).or_insert(rank);
            }
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_data::{database_from_literal, tup, Value};

    fn null(i: NullId) -> Value {
        Value::null(i)
    }

    #[test]
    fn frequency_orders_most_mentioned_first() {
        let nulls: BTreeSet<NullId> = [0, 1, 2].into_iter().collect();
        let a = Cond::eq(null(1), Value::int(1));
        let b = Cond::eq(null(1), null(2));
        let order = var_order(&nulls, [&a, &b], None);
        // ⊥1 appears twice, ⊥2 once, ⊥0 never.
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn stats_cluster_same_relation_nulls() {
        let db = database_from_literal([
            // Small relation hosting ⊥2 and ⊥3, big one hosting ⊥0, ⊥1.
            ("Small", vec!["a"], vec![tup![null(2)], tup![null(3)]]),
            (
                "Big",
                vec!["a"],
                vec![tup![null(0)], tup![null(1)], tup![1], tup![2], tup![3]],
            ),
        ]);
        let stats = Stats::from_database(&db);
        let nulls = db.nulls();
        let conds: Vec<Cond> = nulls
            .iter()
            .map(|n| Cond::eq(Value::null(*n), Value::int(0)))
            .collect();
        let order = var_order(&nulls, conds.iter(), Some((&stats, &db)));
        // The small relation's cluster comes first; ids break ties inside.
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn every_null_appears_exactly_once() {
        let nulls: BTreeSet<NullId> = (0..10).collect();
        let c = Cond::eq(null(4), null(9));
        let order = var_order(&nulls, [&c], None);
        let set: BTreeSet<NullId> = order.iter().copied().collect();
        assert_eq!(set, nulls);
        assert_eq!(order.len(), 10);
        // Deterministic across calls.
        assert_eq!(order, var_order(&nulls, [&c], None));
    }
}
