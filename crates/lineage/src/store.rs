//! The hash-consed decision-diagram store.
//!
//! A [`Forest`] holds *reduced, ordered, multi-valued* decision diagrams
//! (an MDD/BDD hybrid): every variable — one per marked null — is
//! multi-valued, ranging over a finite domain (its slice of the constant
//! pool), and every node is hash-consed, so structurally equal subdiagrams
//! are shared and equality of diagrams is pointer (id) equality. Reduction
//! (a node whose children are all equal collapses to that child) plus
//! ordering plus hash-consing make the representation **canonical**:
//!
//! * a condition is *valid* over the encoded valuation space iff it
//!   compiles to [`TRUE`];
//! * it is *unsatisfiable* iff it compiles to [`FALSE`];
//! * its number of satisfying valuations is read off the diagram by one
//!   memoized bottom-up pass ([`Forest::count_models`]), in `u128`.
//!
//! Binary operations go through an *apply* cache (one per operation), so
//! conjunction/disjunction of already-built diagrams is polynomial in the
//! product of their sizes rather than in the valuation space.

use crate::{LineageError, Result};
use std::collections::HashMap;

/// Index of a node in a [`Forest`]. Terminals are [`FALSE`] and [`TRUE`].
pub type NodeId = u32;

/// The terminal node of unsatisfiable conditions.
pub const FALSE: NodeId = 0;

/// The terminal node of valid conditions.
pub const TRUE: NodeId = 1;

/// An internal node: a variable level plus one child per domain value.
/// Terminals carry the past-the-end level and no children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Node {
    level: u32,
    children: Box<[NodeId]>,
}

/// A store of reduced, ordered, hash-consed multi-valued decision diagrams
/// over a fixed variable order with per-level domain sizes.
#[derive(Debug)]
pub struct Forest {
    /// Domain size per level. Levels are the variable order: level 0 is
    /// tested first.
    domains: Vec<usize>,
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    and_cache: HashMap<(NodeId, NodeId), NodeId>,
    or_cache: HashMap<(NodeId, NodeId), NodeId>,
    not_cache: HashMap<NodeId, NodeId>,
    count_cache: HashMap<NodeId, u128>,
    restrict_cache: HashMap<(NodeId, u32, usize), NodeId>,
}

impl Forest {
    /// A forest over the given per-level domain sizes.
    pub fn new(domains: Vec<usize>) -> Forest {
        let terminal_level = domains.len() as u32;
        let terminal = |_| Node {
            level: terminal_level,
            children: Box::from([]),
        };
        Forest {
            domains,
            nodes: vec![terminal(FALSE), terminal(TRUE)],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            not_cache: HashMap::new(),
            count_cache: HashMap::new(),
            restrict_cache: HashMap::new(),
        }
    }

    /// Number of variables (levels).
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// The domain size of a level.
    pub fn domain(&self, level: u32) -> usize {
        self.domains[level as usize]
    }

    /// Total number of distinct nodes ever created (terminals included) —
    /// the memory-side size measure reported by `Pipeline::explain`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `root` (terminals included): the size
    /// of one diagram, as opposed to the whole shared store.
    pub fn size(&self, root: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n as usize], true) {
                continue;
            }
            count += 1;
            stack.extend(self.nodes[n as usize].children.iter().copied());
        }
        count
    }

    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n as usize].level
    }

    /// The level a node tests; terminals report the past-the-end level.
    pub fn level_of(&self, n: NodeId) -> u32 {
        self.level(n)
    }

    /// The `value`-child of an internal node.
    ///
    /// # Panics
    ///
    /// Panics on terminals or out-of-domain values.
    pub fn child_of(&self, n: NodeId, value: usize) -> NodeId {
        self.nodes[n as usize].children[value]
    }

    /// The cofactor of `n` at `(level, value)`: its `value`-child when `n`
    /// tests `level`, `n` itself when `n` tests a later level.
    fn cofactor(&self, n: NodeId, level: u32, value: usize) -> NodeId {
        if self.level(n) == level {
            self.nodes[n as usize].children[value]
        } else {
            n
        }
    }

    /// Hash-cons a node, applying the reduction rule (all children equal →
    /// the child itself).
    ///
    /// # Errors
    ///
    /// [`LineageError::Exhausted`] when the installed resource governor
    /// refuses the allocation — only *fresh* nodes are charged against the
    /// diagram-node budget; reductions and hash-cons hits are free, so the
    /// cap measures real growth, not traffic. The same discipline as
    /// [`LineageError::CountOverflow`]: exhaustion is a value, and a
    /// half-built diagram is never presented as an answer.
    ///
    /// # Panics
    ///
    /// Panics if the child count does not match the level's domain size.
    pub fn mk(&mut self, level: u32, children: Vec<NodeId>) -> Result<NodeId> {
        assert_eq!(
            children.len(),
            self.domains[level as usize],
            "Forest::mk: child count must equal the level's domain size"
        );
        let first = children[0];
        if children.iter().all(|&c| c == first) {
            return Ok(first);
        }
        let node = Node {
            level,
            children: children.into_boxed_slice(),
        };
        if let Some(&id) = self.unique.get(&node) {
            return Ok(id);
        }
        certa_algebra::governor::consume_nodes(1).map_err(LineageError::Exhausted)?;
        certa_algebra::faultpoint!("lineage::node").map_err(LineageError::Exhausted)?;
        certa_obs::metrics().add(certa_obs::MetricId::LineageNodes, 1);
        let id = NodeId::try_from(self.nodes.len()).expect("more than u32::MAX diagram nodes");
        self.nodes.push(node.clone());
        self.unique.insert(node, id);
        Ok(id)
    }

    /// The generalized cofactor `n|_{x_level = value}`: the diagram of `n`
    /// with the variable at `level` pinned to `value`, so the result never
    /// tests `level`. This is the *world-space restriction* operator behind
    /// incremental null resolution: resolving ⊥ := c restricts every row's
    /// lineage to the sub-space of valuations mapping ⊥ to c, without
    /// recompiling anything. Restriction distributes over `∧`/`∨`/`¬`, so
    /// restricting each operand separately equals restricting the result.
    ///
    /// Memoized per `(node, level, value)`; results are hash-consed back
    /// into the store, so counts and apply caches stay valid.
    ///
    /// # Errors
    ///
    /// [`LineageError::Exhausted`] when the governor's node cap trips.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the level's domain.
    pub fn restrict(&mut self, n: NodeId, level: u32, value: usize) -> Result<NodeId> {
        assert!(
            value < self.domains[level as usize],
            "Forest::restrict: value out of domain"
        );
        // Terminals and nodes testing later levels cannot mention `level`
        // (ordering): they are their own restriction.
        if self.level(n) > level {
            return Ok(n);
        }
        if self.level(n) == level {
            return Ok(self.nodes[n as usize].children[value]);
        }
        let key = (n, level, value);
        if let Some(&r) = self.restrict_cache.get(&key) {
            certa_obs::metrics().add(certa_obs::MetricId::LineageCofactorHits, 1);
            return Ok(r);
        }
        certa_obs::metrics().add(certa_obs::MetricId::LineageCofactorMisses, 1);
        let top = self.level(n);
        let children = (0..self.domains[top as usize])
            .map(|i| {
                let c = self.nodes[n as usize].children[i];
                self.restrict(c, level, value)
            })
            .collect::<Result<Vec<_>>>()?;
        let r = self.mk(top, children)?;
        self.restrict_cache.insert(key, r);
        Ok(r)
    }

    /// The diagram of `x_level = value` (an atomic equality against a pool
    /// constant).
    pub fn var_eq_value(&mut self, level: u32, value: usize) -> Result<NodeId> {
        let children = (0..self.domains[level as usize])
            .map(|i| if i == value { TRUE } else { FALSE })
            .collect();
        self.mk(level, children)
    }

    /// The diagram of `x_a = x_b` for two distinct levels (both variables
    /// take the same pool value). Levels must share a domain size — the
    /// encoding gives every null the full pool, so this always holds there.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or the domain sizes differ.
    pub fn vars_equal(&mut self, a: u32, b: u32) -> Result<NodeId> {
        assert_ne!(a, b, "Forest::vars_equal: identical levels are just TRUE");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert_eq!(
            self.domains[lo as usize], self.domains[hi as usize],
            "Forest::vars_equal: domain sizes must match"
        );
        let k = self.domains[lo as usize];
        let children = (0..k)
            .map(|i| self.var_eq_value(hi, i))
            .collect::<Result<Vec<_>>>()?;
        self.mk(lo, children)
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        if a == FALSE || b == FALSE {
            return Ok(FALSE);
        }
        if a == TRUE {
            return Ok(b);
        }
        if b == TRUE || a == b {
            return Ok(a);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.and_cache.get(&key) {
            certa_obs::metrics().add(certa_obs::MetricId::LineageApplyHits, 1);
            return Ok(r);
        }
        certa_obs::metrics().add(certa_obs::MetricId::LineageApplyMisses, 1);
        let top = self.level(a).min(self.level(b));
        let children = (0..self.domains[top as usize])
            .map(|i| {
                let (ca, cb) = (self.cofactor(a, top, i), self.cofactor(b, top, i));
                self.and(ca, cb)
            })
            .collect::<Result<Vec<_>>>()?;
        let r = self.mk(top, children)?;
        self.and_cache.insert(key, r);
        Ok(r)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        if a == TRUE || b == TRUE {
            return Ok(TRUE);
        }
        if a == FALSE {
            return Ok(b);
        }
        if b == FALSE || a == b {
            return Ok(a);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.or_cache.get(&key) {
            certa_obs::metrics().add(certa_obs::MetricId::LineageApplyHits, 1);
            return Ok(r);
        }
        certa_obs::metrics().add(certa_obs::MetricId::LineageApplyMisses, 1);
        let top = self.level(a).min(self.level(b));
        let children = (0..self.domains[top as usize])
            .map(|i| {
                let (ca, cb) = (self.cofactor(a, top, i), self.cofactor(b, top, i));
                self.or(ca, cb)
            })
            .collect::<Result<Vec<_>>>()?;
        let r = self.mk(top, children)?;
        self.or_cache.insert(key, r);
        Ok(r)
    }

    /// Negation (terminals swap; internal structure is preserved).
    pub fn not(&mut self, a: NodeId) -> Result<NodeId> {
        match a {
            FALSE => Ok(TRUE),
            TRUE => Ok(FALSE),
            _ => {
                if let Some(&r) = self.not_cache.get(&a) {
                    certa_obs::metrics().add(certa_obs::MetricId::LineageApplyHits, 1);
                    return Ok(r);
                }
                certa_obs::metrics().add(certa_obs::MetricId::LineageApplyMisses, 1);
                let level = self.level(a);
                let children = (0..self.domains[level as usize])
                    .map(|i| {
                        let c = self.nodes[a as usize].children[i];
                        self.not(c)
                    })
                    .collect::<Result<Vec<_>>>()?;
                let r = self.mk(level, children)?;
                self.not_cache.insert(a, r);
                self.not_cache.insert(r, a);
                Ok(r)
            }
        }
    }

    /// `true` iff the diagram is satisfied by some valuation — canonical
    /// form makes this a terminal check.
    pub fn is_satisfiable(&self, n: NodeId) -> bool {
        n != FALSE
    }

    /// `true` iff the diagram holds under every valuation.
    pub fn is_valid(&self, n: NodeId) -> bool {
        n == TRUE
    }

    /// The total number of valuations of *all* levels, `Π domains`.
    ///
    /// # Errors
    ///
    /// [`LineageError::CountOverflow`] when the product exceeds `u128`.
    pub fn valuation_count(&self) -> Result<u128> {
        self.gap(0, self.domains.len() as u32)
    }

    /// `Π domains[from..to]` in checked `u128`.
    fn gap(&self, from: u32, to: u32) -> Result<u128> {
        let mut out: u128 = 1;
        for level in from..to {
            out = out
                .checked_mul(self.domains[level as usize] as u128)
                .ok_or(LineageError::CountOverflow)?;
        }
        Ok(out)
    }

    /// Exact model count: the number of total valuations (over **all**
    /// levels of the forest) satisfying the diagram, with per-node
    /// memoization. Variables the diagram never tests contribute a factor
    /// of their domain size.
    ///
    /// # Errors
    ///
    /// [`LineageError::CountOverflow`] when a count exceeds `u128` — the
    /// companion of the world engine's `TooManyWorlds`: overflow is a
    /// value, never a wrap.
    pub fn count_models(&mut self, root: NodeId) -> Result<u128> {
        let below = self.count_below(root)?;
        if below == 0 {
            return Ok(0);
        }
        let skipped = self.gap(0, self.level(root))?;
        below
            .checked_mul(skipped)
            .ok_or(LineageError::CountOverflow)
    }

    /// Satisfying assignments of the levels from `level(n)` to the end.
    fn count_below(&mut self, n: NodeId) -> Result<u128> {
        if n == FALSE {
            return Ok(0);
        }
        if n == TRUE {
            return Ok(1);
        }
        if let Some(&c) = self.count_cache.get(&n) {
            return Ok(c);
        }
        let level = self.level(n);
        let mut total: u128 = 0;
        for i in 0..self.domains[level as usize] {
            let child = self.nodes[n as usize].children[i];
            let below = self.count_below(child)?;
            if below == 0 {
                // A refuted branch contributes nothing, even when the gap
                // product alone would overflow.
                continue;
            }
            let skipped = self.gap(level + 1, self.level(child))?;
            let contribution = below
                .checked_mul(skipped)
                .ok_or(LineageError::CountOverflow)?;
            total = total
                .checked_add(contribution)
                .ok_or(LineageError::CountOverflow)?;
        }
        self.count_cache.insert(n, total);
        Ok(total)
    }

    /// One satisfying valuation (as a value index per level), if any.
    /// Levels the diagram never tests are assigned 0. Used by tests and by
    /// counterexample extraction.
    pub fn any_model(&self, root: NodeId) -> Option<Vec<usize>> {
        if root == FALSE {
            return None;
        }
        let mut out = vec![0usize; self.domains.len()];
        let mut n = root;
        while n != TRUE {
            let level = self.level(n) as usize;
            let (value, child) = self.nodes[n as usize]
                .children
                .iter()
                .enumerate()
                .find(|(_, &c)| c != FALSE)
                .map(|(i, &c)| (i, c))
                .expect("reduced diagram: a non-FALSE node has a non-FALSE child");
            out[level] = value;
            n = child;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_reduction() {
        let mut f = Forest::new(vec![3, 3]);
        // A node whose children are all equal reduces to the child.
        assert_eq!(f.mk(0, vec![TRUE, TRUE, TRUE]).unwrap(), TRUE);
        assert_eq!(f.mk(1, vec![FALSE, FALSE, FALSE]).unwrap(), FALSE);
        // Hash-consing: the same node twice is the same id.
        let a = f.mk(0, vec![TRUE, FALSE, FALSE]).unwrap();
        let b = f.mk(0, vec![TRUE, FALSE, FALSE]).unwrap();
        assert_eq!(a, b);
        assert_eq!(f.node_count(), 3);
    }

    #[test]
    fn tautology_compiles_to_true() {
        // x = 0 ∨ x ≠ 0 over a 4-valued variable.
        let mut f = Forest::new(vec![4]);
        let eq = f.var_eq_value(0, 0).unwrap();
        let neq = f.not(eq).unwrap();
        let either = f.or(eq, neq).unwrap();
        let both = f.and(eq, neq).unwrap();
        assert_eq!(either, TRUE);
        assert_eq!(both, FALSE);
        assert!(f.is_valid(either));
        assert!(!f.is_satisfiable(both));
    }

    #[test]
    fn counting_with_untested_variables() {
        // Three variables with domains 2, 3, 4; condition x0 = 1 tests only
        // level 0, so the count is 1 · 3 · 4 = 12 of 24.
        let mut f = Forest::new(vec![2, 3, 4]);
        let c = f.var_eq_value(0, 1).unwrap();
        assert_eq!(f.count_models(c).unwrap(), 12);
        assert_eq!(f.valuation_count().unwrap(), 24);
        // x1 = x1 is not expressible; x1 = 2 counts 2 · 1 · 4 = 8.
        let c = f.var_eq_value(1, 2).unwrap();
        assert_eq!(f.count_models(c).unwrap(), 8);
        assert_eq!(f.count_models(TRUE).unwrap(), 24);
        assert_eq!(f.count_models(FALSE).unwrap(), 0);
    }

    #[test]
    fn vars_equal_counts_diagonal() {
        let mut f = Forest::new(vec![5, 5]);
        let eq = f.vars_equal(0, 1).unwrap();
        assert_eq!(f.count_models(eq).unwrap(), 5);
        let neq = f.not(eq).unwrap();
        assert_eq!(f.count_models(neq).unwrap(), 20);
        // Negation is an involution on the stored structure.
        assert_eq!(f.not(neq).unwrap(), eq);
    }

    #[test]
    fn apply_respects_ordering_across_levels() {
        let mut f = Forest::new(vec![2, 2, 2]);
        let a = f.var_eq_value(0, 1).unwrap();
        let b = f.var_eq_value(2, 1).unwrap();
        let both = f.and(a, b).unwrap();
        assert_eq!(f.count_models(both).unwrap(), 2); // x1 free
        let either = f.or(a, b).unwrap();
        assert_eq!(f.count_models(either).unwrap(), 6);
        // De Morgan through the store.
        let na = f.not(a).unwrap();
        let nb = f.not(b).unwrap();
        let lhs = f.not(either).unwrap();
        let rhs = f.and(na, nb).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn huge_counts_overflow_as_error_not_wrap() {
        // 22 variables over a 65536-value domain: 65536^22 = 2^352 > u128.
        let mut f = Forest::new(vec![65536; 22]);
        assert_eq!(f.valuation_count(), Err(LineageError::CountOverflow));
        assert_eq!(f.count_models(TRUE), Err(LineageError::CountOverflow));
        // A condition pinning every variable still counts fine: 1 model.
        let mut all = TRUE;
        for level in 0..22 {
            let eq = f.var_eq_value(level, 7).unwrap();
            all = f.and(all, eq).unwrap();
        }
        assert_eq!(f.count_models(all).unwrap(), 1);
    }

    #[test]
    fn counts_past_the_usize_limit_are_exact() {
        // 33 binary variables under TRUE: 2^33 models; 130 would overflow
        // u128 but 120 binary variables count exactly.
        let mut f = Forest::new(vec![2; 120]);
        assert_eq!(f.count_models(TRUE).unwrap(), 1u128 << 120);
        let pinned = f.var_eq_value(60, 1).unwrap();
        assert_eq!(f.count_models(pinned).unwrap(), 1u128 << 119);
    }

    #[test]
    fn any_model_finds_witnesses() {
        let mut f = Forest::new(vec![3, 3]);
        let eq = f.vars_equal(0, 1).unwrap();
        let x0 = f.var_eq_value(0, 2).unwrap();
        let both = f.and(eq, x0).unwrap();
        assert_eq!(f.any_model(both), Some(vec![2, 2]));
        assert_eq!(f.any_model(FALSE), None);
        assert_eq!(f.any_model(TRUE), Some(vec![0, 0]));
    }

    #[test]
    fn restrict_pins_a_level() {
        let mut f = Forest::new(vec![3, 3]);
        let eq = f.vars_equal(0, 1).unwrap();
        // (x0 = x1)|_{x0 = 2} is x1 = 2.
        let pinned = f.restrict(eq, 0, 2).unwrap();
        assert_eq!(pinned, f.var_eq_value(1, 2).unwrap());
        // Restricting the *lower* level of the diagonal works through the
        // recursion: (x0 = x1)|_{x1 = 2} is x0 = 2.
        let pinned = f.restrict(eq, 1, 2).unwrap();
        assert_eq!(pinned, f.var_eq_value(0, 2).unwrap());
        // A diagram not mentioning the level is untouched.
        let a = f.var_eq_value(0, 1).unwrap();
        assert_eq!(f.restrict(a, 1, 0).unwrap(), a);
        // Terminals are fixed points.
        assert_eq!(f.restrict(TRUE, 0, 1).unwrap(), TRUE);
        assert_eq!(f.restrict(FALSE, 1, 2).unwrap(), FALSE);
    }

    #[test]
    fn restrict_distributes_over_connectives() {
        let mut f = Forest::new(vec![2, 2, 2]);
        let a = f.vars_equal(0, 1).unwrap();
        let b = f.var_eq_value(2, 1).unwrap();
        let both = f.and(a, b).unwrap();
        let either = f.or(a, b).unwrap();
        for value in 0..2 {
            let ra = f.restrict(a, 1, value).unwrap();
            let rb = f.restrict(b, 1, value).unwrap();
            let lhs = f.restrict(both, 1, value).unwrap();
            let rhs = f.and(ra, rb).unwrap();
            assert_eq!(lhs, rhs);
            let lhs = f.restrict(either, 1, value).unwrap();
            let rhs = f.or(ra, rb).unwrap();
            assert_eq!(lhs, rhs);
            let na = f.not(a).unwrap();
            let lhs = f.restrict(na, 1, value).unwrap();
            let rhs = f.not(ra).unwrap();
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn restrict_counts_free_the_pinned_level() {
        // Over domains 2·3·4, (x0 = 1 ∧ x1 = 2) restricted at x1 = 2 stops
        // testing x1, so x1 contributes its full factor of 3 to the count.
        let mut f = Forest::new(vec![2, 3, 4]);
        let a = f.var_eq_value(0, 1).unwrap();
        let b = f.var_eq_value(1, 2).unwrap();
        let both = f.and(a, b).unwrap();
        assert_eq!(f.count_models(both).unwrap(), 4);
        let hit = f.restrict(both, 1, 2).unwrap();
        assert_eq!(f.count_models(hit).unwrap(), 12); // x1 free: 1·3·4
        let miss = f.restrict(both, 1, 0).unwrap();
        assert_eq!(miss, FALSE);
    }

    #[test]
    fn node_cap_trips_as_exhausted_and_cache_hits_are_free() {
        use certa_algebra::governor::{self, ExecBudget, Governor};
        use certa_data::GovernorError;
        // Unbudgeted: the 4-valued diagonal needs 5 fresh nodes.
        let mut warm = Forest::new(vec![4, 4]);
        let eq = warm.vars_equal(0, 1).unwrap();
        let before = warm.node_count();
        let armed = Governor::arm(&ExecBudget::new().with_node_budget(2));
        governor::with_governor(&armed, || {
            // A cold forest trips the 2-node cap with a typed error…
            let mut cold = Forest::new(vec![4, 4]);
            match cold.vars_equal(0, 1) {
                Err(LineageError::Exhausted(GovernorError::NodeBudgetExhausted { budget })) => {
                    assert_eq!(budget, 2);
                }
                other => panic!("expected node-cap Exhausted, got {other:?}"),
            }
            // …while rebuilding the already-interned diagonal is pure
            // hash-cons traffic: free under the same cap.
            assert_eq!(warm.vars_equal(0, 1).unwrap(), eq);
        });
        assert_eq!(warm.node_count(), before);
        let err = LineageError::Exhausted(GovernorError::NodeBudgetExhausted { budget: 2 });
        assert!(
            !err.is_unsupported(),
            "exhaustion is not a fragment boundary"
        );
        assert!(err.governor_trip().is_some());
    }

    #[test]
    fn size_measures_one_diagram_not_the_store() {
        let mut f = Forest::new(vec![2, 2]);
        let a = f.var_eq_value(0, 0).unwrap();
        let b = f.var_eq_value(1, 0).unwrap();
        let both = f.and(a, b).unwrap();
        assert_eq!(f.size(a), 3); // node + two terminals
        assert!(f.size(both) >= f.size(a));
        assert!(f.node_count() >= f.size(both));
    }
}
