//! First-order logic (relational calculus) formulae.
//!
//! The atoms are those of §2 of the survey: relational atoms `R(x̄)`,
//! equality `x = y`, the constant test `const(x)` and the null test
//! `null(x)`. Formulae are closed under `∧`, `∨`, `¬`, `∃` and `∀`, plus the
//! assertion operator `↑` needed to capture SQL's `WHERE` clause (§5.2,
//! `FO↑SQL`).

use certa_data::Const;
use std::collections::BTreeSet;
use std::fmt;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant literal.
    Const(Const),
}

impl Term {
    /// Build a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Build a constant term.
    pub fn constant(c: impl Into<Const>) -> Term {
        Term::Const(c.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A first-order formula over the paper's vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Relational atom `R(t̄)`.
    Rel(String, Vec<Term>),
    /// Equality atom `t₁ = t₂`.
    Eq(Term, Term),
    /// `const(t)`: the term denotes a constant.
    ConstTest(Term),
    /// `null(t)`: the term denotes a null.
    NullTest(Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification over the active domain.
    Exists(String, Box<Formula>),
    /// Universal quantification over the active domain.
    Forall(String, Box<Formula>),
    /// The assertion operator `↑φ` of `FO↑SQL` (§5.2): collapses `u` to `f`.
    Assert(Box<Formula>),
}

impl Formula {
    /// Relational atom with variable names.
    pub fn rel(name: impl Into<String>, terms: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Rel(name.into(), terms.into_iter().collect())
    }

    /// Equality of two terms.
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Existential quantification.
    pub fn exists(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(var.into(), Box::new(body))
    }

    /// Universal quantification.
    pub fn forall(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(var.into(), Box::new(body))
    }

    /// The assertion operator.
    pub fn assert(self) -> Formula {
        Formula::Assert(Box::new(self))
    }

    /// Free variables of the formula, in sorted order.
    pub fn free_vars(&self) -> BTreeSet<String> {
        match self {
            Formula::Rel(_, terms) => terms
                .iter()
                .filter_map(|t| t.as_var().map(str::to_string))
                .collect(),
            Formula::Eq(a, b) => [a, b]
                .iter()
                .filter_map(|t| t.as_var().map(str::to_string))
                .collect(),
            Formula::ConstTest(t) | Formula::NullTest(t) => {
                t.as_var().map(str::to_string).into_iter().collect()
            }
            Formula::Not(inner) | Formula::Assert(inner) => inner.free_vars(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Exists(v, body) | Formula::Forall(v, body) => {
                let mut s = body.free_vars();
                s.remove(v);
                s
            }
        }
    }

    /// `true` iff the formula has no free variables (a Boolean query).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// `true` iff the formula uses the assertion operator anywhere.
    pub fn uses_assertion(&self) -> bool {
        match self {
            Formula::Assert(_) => true,
            Formula::Not(inner) => inner.uses_assertion(),
            Formula::And(a, b) | Formula::Or(a, b) => a.uses_assertion() || b.uses_assertion(),
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.uses_assertion(),
            _ => false,
        }
    }

    /// `true` iff the formula is in the existential-positive fragment
    /// (∃, ∧, ∨ over relational and equality atoms) — i.e. defines a UCQ.
    pub fn is_existential_positive(&self) -> bool {
        match self {
            Formula::Rel(..) | Formula::Eq(..) => true,
            Formula::ConstTest(_) | Formula::NullTest(_) => false,
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.is_existential_positive() && b.is_existential_positive()
            }
            Formula::Exists(_, body) => body.is_existential_positive(),
            Formula::Not(_) | Formula::Forall(..) | Formula::Assert(_) => false,
        }
    }

    /// `true` iff the formula is positive (∃, ∀, ∧, ∨ — no negation), the
    /// fragment preserved under onto homomorphisms (§4.1).
    pub fn is_positive(&self) -> bool {
        match self {
            Formula::Rel(..) | Formula::Eq(..) => true,
            Formula::ConstTest(_) | Formula::NullTest(_) => false,
            Formula::And(a, b) | Formula::Or(a, b) => a.is_positive() && b.is_positive(),
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.is_positive(),
            Formula::Not(_) | Formula::Assert(_) => false,
        }
    }

    /// `true` iff the formula lies in the Pos∀G fragment of §4.1: positive
    /// formulae closed under the guarded-universal formation rule
    /// `∀x̄ (α(x̄) → φ(x̄, ȳ))` with `α` an atomic formula. Negation is only
    /// allowed as the implication's guard, i.e. as `¬α ∨ φ` with `α` atomic
    /// directly under a universal quantifier.
    pub fn is_pos_forall_guarded(&self) -> bool {
        match self {
            Formula::Rel(..) | Formula::Eq(..) => true,
            Formula::ConstTest(_) | Formula::NullTest(_) => false,
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.is_pos_forall_guarded() && b.is_pos_forall_guarded()
            }
            Formula::Exists(_, body) => body.is_pos_forall_guarded(),
            Formula::Forall(_, body) => {
                // Either an ordinary positive body, or a guarded implication
                // (possibly under further universal quantifiers).
                body.is_guarded_implication_or_positive()
            }
            Formula::Not(_) | Formula::Assert(_) => false,
        }
    }

    fn is_guarded_implication_or_positive(&self) -> bool {
        match self {
            // ¬α ∨ φ with α atomic.
            Formula::Or(lhs, rhs) => match (&**lhs, &**rhs) {
                (Formula::Not(guard), body) | (body, Formula::Not(guard)) => {
                    guard.is_atomic() && body.is_pos_forall_guarded()
                }
                _ => self.is_pos_forall_guarded(),
            },
            Formula::Forall(_, body) => body.is_guarded_implication_or_positive(),
            _ => self.is_pos_forall_guarded(),
        }
    }

    /// `true` iff the formula is an atom.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Formula::Rel(..) | Formula::Eq(..) | Formula::ConstTest(_) | Formula::NullTest(_)
        )
    }

    /// Names of relations mentioned by the formula.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::Rel(name, _) => {
                out.insert(name.clone());
            }
            Formula::Not(inner) | Formula::Assert(inner) => inner.collect_relations(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.collect_relations(out),
            _ => {}
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Rel(name, terms) => {
                write!(f, "{name}(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::ConstTest(t) => write!(f, "const({t})"),
            Formula::NullTest(t) => write!(f, "null({t})"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Exists(v, body) => write!(f, "∃{v} {body}"),
            Formula::Forall(v, body) => write!(f, "∀{v} {body}"),
            Formula::Assert(inner) => write!(f, "↑{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x")
    }

    fn y() -> Term {
        Term::var("y")
    }

    #[test]
    fn free_variables() {
        let f = Formula::exists("y", Formula::rel("R", [x(), y()]));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec!["x"]);
        assert!(!f.is_sentence());
        let closed = Formula::exists("x", f);
        assert!(closed.is_sentence());
    }

    #[test]
    fn constants_have_no_free_variables() {
        let f = Formula::eq(Term::constant(1), Term::constant(2));
        assert!(f.is_sentence());
    }

    #[test]
    fn fragment_classification() {
        let ucq = Formula::exists("x", Formula::rel("R", [x()]).or(Formula::rel("S", [x()])));
        assert!(ucq.is_existential_positive());
        assert!(ucq.is_positive());
        assert!(ucq.is_pos_forall_guarded());

        let pos = Formula::forall("x", Formula::rel("R", [x()]));
        assert!(!pos.is_existential_positive());
        assert!(pos.is_positive());

        let neg = Formula::rel("R", [x()]).not();
        assert!(!neg.is_positive());
        assert!(!neg.is_pos_forall_guarded());
    }

    #[test]
    fn guarded_universal_is_pos_forall_g() {
        // ∀x (¬R(x) ∨ S(x)) — i.e. ∀x (R(x) → S(x)) — is in Pos∀G but not
        // positive-only syntax (it uses a negated guard).
        let f = Formula::forall(
            "x",
            Formula::rel("R", [x()]).not().or(Formula::rel("S", [x()])),
        );
        assert!(f.is_pos_forall_guarded());
        assert!(!f.is_positive());
        // A non-atomic guard falls outside the fragment.
        let bad = Formula::forall(
            "x",
            Formula::rel("R", [x()])
                .and(Formula::rel("S", [x()]))
                .not()
                .or(Formula::rel("S", [x()])),
        );
        assert!(!bad.is_pos_forall_guarded());
    }

    #[test]
    fn assertion_detection() {
        let f = Formula::exists("x", Formula::rel("R", [x()]).assert());
        assert!(f.uses_assertion());
        assert!(!Formula::rel("R", [x()]).uses_assertion());
        assert!(!f.is_existential_positive());
    }

    #[test]
    fn relation_collection_and_display() {
        let f = Formula::rel("R", [x()]).and(Formula::rel("S", [y()]).not());
        assert_eq!(
            f.relations().into_iter().collect::<Vec<_>>(),
            vec!["R".to_string(), "S".to_string()]
        );
        assert_eq!(f.to_string(), "(R(x) ∧ ¬S(y))");
        let g = Formula::forall("x", Formula::NullTest(x()).or(Formula::ConstTest(x())));
        assert_eq!(g.to_string(), "∀x (null(x) ∨ const(x))");
    }
}
