//! # certa-logic
//!
//! Propositional and first-order many-valued logics for incomplete
//! information, following §5 of the PODS 2020 survey "Coping with Incomplete
//! Data: Recent Advances".
//!
//! * [`truth`] — truth values and propositional logics: the Boolean logic
//!   `L2v`, Kleene's three-valued logic `L3v` (Figure 3), the six-valued
//!   epistemic logic `L6v` derived from possible-worlds interpretations
//!   (§5.2), and the extension `L3v↑` with Bochvar's assertion operator that
//!   captures SQL's `WHERE` clause;
//! * [`props`] — property checkers used by Theorem 5.3 and Theorem 5.1:
//!   idempotence, weak idempotence, distributivity, knowledge-order
//!   monotonicity, and the search for maximal well-behaved sublogics;
//! * [`fo`] — first-order (relational calculus) formulae with the paper's
//!   atoms: relational atoms, equality, `const(x)` and `null(x)`;
//! * [`semantics`] — many-valued semantics of FO formulae over incomplete
//!   databases: the Boolean, unification-based, null-free and SQL (mixed)
//!   semantics of atoms, lifted through Kleene connectives and active-domain
//!   quantification; plus the `FO↑SQL` evaluation with the assertion
//!   operator;
//! * [`translate`] — the translations behind Theorems 5.4–5.5: every
//!   `FO(L3v)` formula under a mixed (Boolean / null-free) atom semantics is
//!   captured by Boolean first-order formulae, one per truth value.

pub mod fo;
pub mod props;
pub mod semantics;
pub mod translate;
pub mod truth;

pub use fo::{Formula, Term};
pub use semantics::{eval_formula, query_answers, Assignment, AtomSemantics};
pub use truth::{Kleene, SixValued, Truth3, Truth6};

/// Errors raised by the logic crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A free variable was not bound by the assignment.
    UnboundVariable(String),
    /// A relation mentioned in a formula is missing from the database.
    UnknownRelation(String),
    /// A relational atom's arity differs from the schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Number of terms in the atom.
        got: usize,
    },
    /// The operation requires a formula without the assertion operator.
    AssertionNotSupported,
}

impl std::fmt::Display for LogicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            LogicError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            LogicError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for `{relation}`: schema says {expected}, atom has {got}"
            ),
            LogicError::AssertionNotSupported => {
                write!(
                    f,
                    "the assertion operator ↑ is not supported in this context"
                )
            }
        }
    }
}

impl std::error::Error for LogicError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LogicError>;
