//! Structural properties of propositional many-valued logics.
//!
//! These checkers back two results of the survey:
//!
//! * **Theorem 5.3**: the maximal sublogic of `L6v` that is both
//!   distributive and idempotent is Kleene's `L3v` — so, at the
//!   propositional level, SQL's designers chose the right logic;
//! * **Theorem 5.1**: many-valued evaluation has correctness guarantees as
//!   soon as the connectives respect the knowledge order (and the assertion
//!   operator of SQL's `WHERE` clause is exactly the connective that does
//!   not).

use crate::truth::{PropositionalLogic, Truth3, Truth6};

/// `true` iff `∧` and `∨` are idempotent on every value of the logic:
/// `a ∧ a = a` and `a ∨ a = a`.
pub fn is_idempotent<L: PropositionalLogic>(logic: &L) -> bool {
    logic
        .values()
        .iter()
        .all(|&a| logic.and(a, a) == a && logic.or(a, a) == a)
}

/// `true` iff `∧` and `∨` are *weakly* idempotent:
/// `a ∨ a ∨ a = a ∨ a` and `a ∧ a ∧ a = a ∧ a` (the condition under which
/// Boolean FO captures a many-valued FO logic, §5.2).
pub fn is_weakly_idempotent<L: PropositionalLogic>(logic: &L) -> bool {
    logic.values().iter().all(|&a| {
        logic.or(logic.or(a, a), a) == logic.or(a, a)
            && logic.and(logic.and(a, a), a) == logic.and(a, a)
    })
}

/// `true` iff the logic is distributive:
/// `a ∧ (b ∨ c) = (a ∧ b) ∨ (a ∧ c)` and dually, for all values.
pub fn is_distributive<L: PropositionalLogic>(logic: &L) -> bool {
    let vs = logic.values();
    vs.iter().all(|&a| {
        vs.iter().all(|&b| {
            vs.iter().all(|&c| {
                logic.and(a, logic.or(b, c)) == logic.or(logic.and(a, b), logic.and(a, c))
                    && logic.or(a, logic.and(b, c)) == logic.and(logic.or(a, b), logic.or(a, c))
            })
        })
    })
}

/// `true` iff `∧` and `∨` are commutative and associative (sanity property
/// required for the standard query-optimisation identities of §5.2).
pub fn is_commutative_associative<L: PropositionalLogic>(logic: &L) -> bool {
    let vs = logic.values();
    let comm = vs.iter().all(|&a| {
        vs.iter()
            .all(|&b| logic.and(a, b) == logic.and(b, a) && logic.or(a, b) == logic.or(b, a))
    });
    let assoc = vs.iter().all(|&a| {
        vs.iter().all(|&b| {
            vs.iter().all(|&c| {
                logic.and(logic.and(a, b), c) == logic.and(a, logic.and(b, c))
                    && logic.or(logic.or(a, b), c) == logic.or(a, logic.or(b, c))
            })
        })
    });
    comm && assoc
}

/// `true` iff every connective of the logic is monotone with respect to the
/// knowledge order (condition (2) of Theorem 5.1).
pub fn respects_knowledge_order<L: PropositionalLogic>(logic: &L) -> bool {
    let vs = logic.values();
    let unary = vs.iter().all(|&a| {
        vs.iter().all(|&a2| {
            !logic.knowledge_le(a, a2) || logic.knowledge_le(logic.not(a), logic.not(a2))
        })
    });
    let binary = vs.iter().all(|&a| {
        vs.iter().all(|&a2| {
            vs.iter().all(|&b| {
                vs.iter().all(|&b2| {
                    if logic.knowledge_le(a, a2) && logic.knowledge_le(b, b2) {
                        logic.knowledge_le(logic.and(a, b), logic.and(a2, b2))
                            && logic.knowledge_le(logic.or(a, b), logic.or(a2, b2))
                    } else {
                        true
                    }
                })
            })
        })
    });
    unary && binary
}

/// `true` iff a unary operator is monotone with respect to the knowledge
/// order. Used to show that the assertion operator `↑` breaks monotonicity
/// (the "culprit" of §5.2): `u ⪯ t` but `↑u = f ⋠ t = ↑t`.
pub fn unary_respects_knowledge_order<L, F>(logic: &L, op: F) -> bool
where
    L: PropositionalLogic,
    F: Fn(L::Value) -> L::Value,
{
    let vs = logic.values();
    vs.iter().all(|&a| {
        vs.iter()
            .all(|&b| !logic.knowledge_le(a, b) || logic.knowledge_le(op(a), op(b)))
    })
}

/// A sublogic of `L6v`: a subset of its truth values closed under `∧`, `∨`
/// and `¬`, with the inherited tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubLogic<'a> {
    parent: &'a crate::truth::SixValued,
    values: Vec<Truth6>,
}

impl<'a> SubLogic<'a> {
    /// Construct the sublogic induced by a set of values, if that set is
    /// closed under the parent's connectives.
    pub fn new(parent: &'a crate::truth::SixValued, values: Vec<Truth6>) -> Option<Self> {
        let closed = values.iter().all(|&a| {
            values.contains(&parent.not6(a))
                && values.iter().all(|&b| {
                    values.contains(&parent.and6(a, b)) && values.contains(&parent.or6(a, b))
                })
        });
        closed.then_some(SubLogic { parent, values })
    }

    /// The carrier set.
    pub fn values_slice(&self) -> &[Truth6] {
        &self.values
    }
}

impl PropositionalLogic for SubLogic<'_> {
    type Value = Truth6;

    fn values(&self) -> Vec<Truth6> {
        self.values.clone()
    }

    fn and(&self, a: Truth6, b: Truth6) -> Truth6 {
        self.parent.and6(a, b)
    }

    fn or(&self, a: Truth6, b: Truth6) -> Truth6 {
        self.parent.or6(a, b)
    }

    fn not(&self, a: Truth6) -> Truth6 {
        self.parent.not6(a)
    }

    fn knowledge_le(&self, a: Truth6, b: Truth6) -> bool {
        a.knowledge_le(b)
    }

    fn bottom(&self) -> Option<Truth6> {
        self.values
            .contains(&Truth6::Unknown)
            .then_some(Truth6::Unknown)
    }
}

/// Enumerate all sublogics of `L6v` (subsets of truth values closed under
/// the connectives) that are both distributive and idempotent, and return
/// the maximal ones by set inclusion.
///
/// Theorem 5.3 states the unique maximal such sublogic is `{t, f, u}` with
/// Kleene's tables; the E7 experiment and the test-suite check precisely
/// this output.
pub fn maximal_distributive_idempotent_sublogics(
    parent: &crate::truth::SixValued,
) -> Vec<Vec<Truth6>> {
    let all = Truth6::ALL;
    let mut good: Vec<Vec<Truth6>> = Vec::new();
    // Enumerate all 2^6 subsets.
    for mask in 1u32..(1 << all.len()) {
        let subset: Vec<Truth6> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| *v)
            .collect();
        if let Some(sub) = SubLogic::new(parent, subset.clone()) {
            if is_distributive(&sub) && is_idempotent(&sub) {
                good.push(subset);
            }
        }
    }
    // Keep only maximal ones.
    let maximal: Vec<Vec<Truth6>> = good
        .iter()
        .filter(|s| {
            !good
                .iter()
                .any(|t| t.len() > s.len() && s.iter().all(|v| t.contains(v)))
        })
        .cloned()
        .collect();
    maximal
}

/// The `L3v↑` logic: Kleene's logic extended with the assertion operator.
/// Exposed as a unary-operator pair so monotonicity checks can target the
/// assertion specifically.
#[derive(Debug, Clone, Copy, Default)]
pub struct KleeneWithAssertion;

impl KleeneWithAssertion {
    /// The assertion operator `↑`.
    pub fn assert(&self, a: Truth3) -> Truth3 {
        a.assert()
    }
}

impl PropositionalLogic for KleeneWithAssertion {
    type Value = Truth3;

    fn values(&self) -> Vec<Truth3> {
        Truth3::ALL.to_vec()
    }

    fn and(&self, a: Truth3, b: Truth3) -> Truth3 {
        a.and(b)
    }

    fn or(&self, a: Truth3, b: Truth3) -> Truth3 {
        a.or(b)
    }

    fn not(&self, a: Truth3) -> Truth3 {
        a.not()
    }

    fn knowledge_le(&self, a: Truth3, b: Truth3) -> bool {
        a.knowledge_le(b)
    }

    fn bottom(&self) -> Option<Truth3> {
        Some(Truth3::Unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{Boolean2, Kleene, SixValued};

    #[test]
    fn kleene_is_distributive_idempotent_and_monotone() {
        let l3 = Kleene;
        assert!(is_idempotent(&l3));
        assert!(is_weakly_idempotent(&l3));
        assert!(is_distributive(&l3));
        assert!(is_commutative_associative(&l3));
        assert!(respects_knowledge_order(&l3));
    }

    #[test]
    fn boolean_logic_is_well_behaved() {
        let l2 = Boolean2;
        assert!(is_idempotent(&l2));
        assert!(is_distributive(&l2));
        assert!(is_commutative_associative(&l2));
    }

    #[test]
    fn six_valued_logic_is_neither_distributive_nor_idempotent() {
        let l6 = SixValued::default();
        assert!(!is_idempotent(&l6));
        assert!(!is_distributive(&l6));
    }

    #[test]
    fn six_valued_logic_still_respects_knowledge_order() {
        // The connectives of L6v are knowledge-monotone; it is only the
        // assertion operator (absent from L6v) that breaks monotonicity.
        let l6 = SixValued::default();
        assert!(respects_knowledge_order(&l6));
    }

    #[test]
    fn theorem_5_3_maximal_sublogic_is_kleene() {
        let l6 = SixValued::default();
        let maximal = maximal_distributive_idempotent_sublogics(&l6);
        assert_eq!(maximal.len(), 1, "unique maximal sublogic expected");
        let mut vals = maximal[0].clone();
        vals.sort();
        let mut expected = vec![Truth6::True, Truth6::False, Truth6::Unknown];
        expected.sort();
        assert_eq!(vals, expected);
        // And on that carrier the tables are Kleene's (checked value-wise).
        let sub = SubLogic::new(&l6, maximal[0].clone()).unwrap();
        for &a in sub.values_slice() {
            for &b in sub.values_slice() {
                let a3 = a.as_truth3().unwrap();
                let b3 = b.as_truth3().unwrap();
                assert_eq!(sub.and(a, b).as_truth3(), Some(a3.and(b3)));
                assert_eq!(sub.or(a, b).as_truth3(), Some(a3.or(b3)));
            }
        }
    }

    #[test]
    fn assertion_operator_breaks_knowledge_monotonicity() {
        let l3a = KleeneWithAssertion;
        // The base connectives are monotone...
        assert!(respects_knowledge_order(&l3a));
        // ... but the assertion operator is not.
        assert!(!unary_respects_knowledge_order(&l3a, |v| l3a.assert(v)));
        // Negation, by contrast, is monotone.
        assert!(unary_respects_knowledge_order(&l3a, |v| l3a.not(v)));
    }

    #[test]
    fn sublogic_requires_closure() {
        let l6 = SixValued::default();
        // {t} alone is not closed under negation.
        assert!(SubLogic::new(&l6, vec![Truth6::True]).is_none());
        // {t, f} is closed and Boolean.
        let tf = SubLogic::new(&l6, vec![Truth6::True, Truth6::False]).unwrap();
        assert!(is_idempotent(&tf));
        assert!(is_distributive(&tf));
        assert_eq!(tf.bottom(), None);
    }

    #[test]
    fn weak_idempotence_of_kleene_and_assertion_logic() {
        // Weak idempotence (a∨a∨a = a∨a) is the condition under which
        // Boolean FO captures a many-valued FO logic (§5.2); Kleene's logic
        // satisfies the full idempotence and a fortiori the weak one.
        assert!(is_weakly_idempotent(&Kleene));
        assert!(is_weakly_idempotent(&KleeneWithAssertion));
    }
}
