//! Many-valued semantics of first-order formulae over incomplete databases.
//!
//! A first-order many-valued logic is a pair `(FO(L), ⟦·⟧)` (§5): formulae
//! built from the connectives of a propositional logic `L`, together with a
//! semantics assigning to each formula, database and assignment a truth
//! value, compositional in the connectives (equations (10)–(11) of the
//! paper) with quantifiers ranging over the active domain.
//!
//! This module fixes `L = L3v` (Kleene) — optionally extended with the
//! assertion operator — and provides the four atom semantics discussed in
//! §5.1–5.2:
//!
//! * [`AtomSemantics::Boolean`] — the textbook two-valued semantics (12);
//! * [`AtomSemantics::Unification`] — the `⟦·⟧unif` semantics (13a)/(13b)
//!   with correctness guarantees w.r.t. certain answers with nulls
//!   (Corollary 5.2);
//! * [`AtomSemantics::NullFree`] — the `⟦·⟧nullfree` semantics (14), the way
//!   SQL treats comparisons;
//! * [`AtomSemantics::Sql`] — the mixed semantics (15): Boolean semantics
//!   for base relations, null-free semantics for equality. Together with the
//!   assertion operator this is the FO core of SQL, `FO↑SQL`.

use crate::fo::{Formula, Term};
use crate::truth::Truth3;
use crate::{LogicError, Result};
use certa_data::{unify, Database, Relation, Tuple, Value};
use std::collections::BTreeMap;

/// An assignment of database values to variable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    map: BTreeMap<String, Value>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// Build from `(variable, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Self {
        Assignment {
            map: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Bind a variable, returning the previous binding if any.
    pub fn bind(&mut self, var: impl Into<String>, value: Value) -> Option<Value> {
        self.map.insert(var.into(), value)
    }

    /// Look up a variable.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// Resolve a term to a value.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::UnboundVariable`] for an unbound variable.
    pub fn resolve(&self, term: &Term) -> Result<Value> {
        match term {
            Term::Var(v) => self
                .map
                .get(v)
                .cloned()
                .ok_or_else(|| LogicError::UnboundVariable(v.clone())),
            Term::Const(c) => Ok(Value::Const(c.clone())),
        }
    }
}

/// The atom semantics of §5.1–5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomSemantics {
    /// The standard two-valued semantics (12): `R(ā)` is `t` iff `ā ∈ R`,
    /// `a = b` is `t` iff the values are (syntactically) equal.
    Boolean,
    /// The unification-based semantics `⟦·⟧unif` (13): `R(ā)` is `f` only
    /// when no tuple of `R` unifies with `ā`; `a = b` is `f` only when both
    /// are distinct constants.
    Unification,
    /// The null-free semantics `⟦·⟧nullfree` (14): any atom involving a null
    /// evaluates to `u`.
    NullFree,
    /// SQL's mixed semantics (15): Boolean semantics for base relations,
    /// null-free semantics for equality.
    Sql,
}

impl AtomSemantics {
    /// Truth value of a relational atom `R(ā)` for a relation instance.
    pub fn rel_atom(self, relation: &Relation, args: &Tuple) -> Truth3 {
        match self {
            AtomSemantics::Boolean | AtomSemantics::Sql => {
                Truth3::from_bool(relation.contains(args))
            }
            AtomSemantics::Unification => {
                if relation.contains(args) {
                    Truth3::True
                } else if relation.iter().any(|b| unify(args, b).is_some()) {
                    Truth3::Unknown
                } else {
                    Truth3::False
                }
            }
            AtomSemantics::NullFree => {
                if !args.all_const() {
                    Truth3::Unknown
                } else {
                    Truth3::from_bool(relation.contains(args))
                }
            }
        }
    }

    /// Truth value of an equality atom `a = b`.
    pub fn eq_atom(self, a: &Value, b: &Value) -> Truth3 {
        match self {
            AtomSemantics::Boolean => Truth3::from_bool(a == b),
            AtomSemantics::Unification => {
                if a == b {
                    Truth3::True
                } else if a.is_const() && b.is_const() {
                    Truth3::False
                } else {
                    Truth3::Unknown
                }
            }
            AtomSemantics::NullFree | AtomSemantics::Sql => {
                if a.is_null() || b.is_null() {
                    Truth3::Unknown
                } else {
                    Truth3::from_bool(a == b)
                }
            }
        }
    }
}

/// Evaluate a formula on a database under an assignment with the given atom
/// semantics; connectives follow Kleene's logic, quantifiers range over the
/// active domain, and `↑` is Bochvar's assertion.
///
/// # Errors
///
/// Returns an error for unbound variables, unknown relations, or relational
/// atoms whose arity disagrees with the schema.
pub fn eval_formula(
    formula: &Formula,
    db: &Database,
    assignment: &Assignment,
    semantics: AtomSemantics,
) -> Result<Truth3> {
    match formula {
        Formula::Rel(name, terms) => {
            let relation = db
                .relation(name)
                .map_err(|_| LogicError::UnknownRelation(name.clone()))?;
            if relation.arity() != terms.len() {
                return Err(LogicError::ArityMismatch {
                    relation: name.clone(),
                    expected: relation.arity(),
                    got: terms.len(),
                });
            }
            let mut values = Vec::with_capacity(terms.len());
            for t in terms {
                values.push(assignment.resolve(t)?);
            }
            Ok(semantics.rel_atom(relation, &Tuple::new(values)))
        }
        Formula::Eq(a, b) => {
            let (va, vb) = (assignment.resolve(a)?, assignment.resolve(b)?);
            Ok(semantics.eq_atom(&va, &vb))
        }
        Formula::ConstTest(t) => Ok(Truth3::from_bool(assignment.resolve(t)?.is_const())),
        Formula::NullTest(t) => Ok(Truth3::from_bool(assignment.resolve(t)?.is_null())),
        Formula::Not(inner) => Ok(eval_formula(inner, db, assignment, semantics)?.not()),
        Formula::And(a, b) => Ok(eval_formula(a, db, assignment, semantics)?
            .and(eval_formula(b, db, assignment, semantics)?)),
        Formula::Or(a, b) => Ok(eval_formula(a, db, assignment, semantics)?
            .or(eval_formula(b, db, assignment, semantics)?)),
        Formula::Exists(var, body) => {
            // Empty disjunction is f.
            let mut acc = Truth3::False;
            for value in db.active_domain() {
                let mut inner = assignment.clone();
                inner.bind(var.clone(), value);
                acc = acc.or(eval_formula(body, db, &inner, semantics)?);
                if acc == Truth3::True {
                    break;
                }
            }
            Ok(acc)
        }
        Formula::Forall(var, body) => {
            // Empty conjunction is t.
            let mut acc = Truth3::True;
            for value in db.active_domain() {
                let mut inner = assignment.clone();
                inner.bind(var.clone(), value);
                acc = acc.and(eval_formula(body, db, &inner, semantics)?);
                if acc == Truth3::False {
                    break;
                }
            }
            Ok(acc)
        }
        Formula::Assert(inner) => Ok(eval_formula(inner, db, assignment, semantics)?.assert()),
    }
}

/// Classical (two-valued) evaluation of a Boolean FO formula: the Boolean
/// atom semantics never produces `u` and Kleene's connectives restricted to
/// `{t, f}` are the classical ones.
///
/// # Errors
///
/// As [`eval_formula`].
pub fn eval_classical(formula: &Formula, db: &Database, assignment: &Assignment) -> Result<bool> {
    Ok(eval_formula(formula, db, assignment, AtomSemantics::Boolean)?.is_true())
}

/// The query `Q_φ(D) = { ā | ⟦φ⟧_{D,ā} = t }` (§5.2): answers over the
/// active domain on which the formula evaluates to `t`.
///
/// `free_vars` fixes the order of the output columns; it must cover the free
/// variables of the formula.
///
/// # Errors
///
/// As [`eval_formula`], plus an unbound-variable error if `free_vars` misses
/// a free variable.
pub fn query_answers(
    formula: &Formula,
    free_vars: &[&str],
    db: &Database,
    semantics: AtomSemantics,
) -> Result<Relation> {
    answers_with_value(formula, free_vars, db, semantics, Truth3::True)
}

/// Answers on which the formula takes a *given* truth value — useful for
/// inspecting the `f` and `u` regions of a three-valued query.
///
/// # Errors
///
/// As [`query_answers`].
pub fn answers_with_value(
    formula: &Formula,
    free_vars: &[&str],
    db: &Database,
    semantics: AtomSemantics,
    target: Truth3,
) -> Result<Relation> {
    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    let k = free_vars.len();
    let mut out = Relation::empty(k);
    let total: usize = if k == 0 {
        1
    } else if domain.is_empty() {
        0
    } else {
        domain.len().pow(k as u32)
    };
    for mut idx in 0..total {
        let mut assignment = Assignment::new();
        let mut values = Vec::with_capacity(k);
        for var in free_vars {
            let v = domain[idx % domain.len().max(1)].clone();
            idx /= domain.len().max(1);
            assignment.bind(*var, v.clone());
            values.push(v);
        }
        if eval_formula(formula, db, &assignment, semantics)? == target {
            out.insert(Tuple::new(values));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_data::{database_from_literal, tup};

    fn x() -> Term {
        Term::var("x")
    }

    fn db() -> Database {
        database_from_literal([
            (
                "R",
                vec!["a", "b"],
                vec![tup![1, Value::null(0)], tup![2, 3]],
            ),
            ("S", vec!["a"], vec![tup![1], tup![Value::null(1)]]),
        ])
    }

    #[test]
    fn boolean_atom_semantics() {
        let d = db();
        let phi = Formula::rel("R", [Term::constant(2), Term::constant(3)]);
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Boolean).unwrap(),
            Truth3::True
        );
        let phi = Formula::rel("R", [Term::constant(1), Term::constant(1)]);
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Boolean).unwrap(),
            Truth3::False
        );
    }

    #[test]
    fn unification_semantics_example_from_paper() {
        // §5.1: D = {R(1, ⊥)}, ā = (1, 1). The Boolean semantics says f,
        // which has no correctness guarantee; the unification semantics
        // says u because (1,1) unifies with (1,⊥).
        let d = database_from_literal([("R", vec!["a", "b"], vec![tup![1, Value::null(0)]])]);
        let phi = Formula::rel("R", [Term::constant(1), Term::constant(1)]);
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Boolean).unwrap(),
            Truth3::False
        );
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Unification).unwrap(),
            Truth3::Unknown
        );
        // A tuple unifying with nothing is certainly false.
        let phi = Formula::rel("R", [Term::constant(7), Term::constant(1)]);
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Unification).unwrap(),
            Truth3::False
        );
        // A tuple literally present is true.
        let phi = Formula::rel("R", [Term::constant(1), Term::Var("x".into())]);
        let mut a = Assignment::new();
        a.bind("x", Value::null(0));
        assert_eq!(
            eval_formula(&phi, &d, &a, AtomSemantics::Unification).unwrap(),
            Truth3::True
        );
    }

    #[test]
    fn equality_semantics_variants() {
        let c1 = Value::int(1);
        let c2 = Value::int(2);
        let n = Value::null(0);
        for (sem, a, b, expect) in [
            (AtomSemantics::Boolean, &c1, &c1, Truth3::True),
            (AtomSemantics::Boolean, &c1, &n, Truth3::False),
            (AtomSemantics::Unification, &n, &n, Truth3::True),
            (AtomSemantics::Unification, &c1, &n, Truth3::Unknown),
            (AtomSemantics::Unification, &c1, &c2, Truth3::False),
            (AtomSemantics::NullFree, &n, &n, Truth3::Unknown),
            (AtomSemantics::NullFree, &c1, &c2, Truth3::False),
            (AtomSemantics::Sql, &c1, &n, Truth3::Unknown),
            (AtomSemantics::Sql, &c1, &c1, Truth3::True),
        ] {
            assert_eq!(sem.eq_atom(a, b), expect, "{sem:?} {a} = {b}");
        }
    }

    #[test]
    fn nullfree_relation_atom() {
        let d = db();
        let r = d.relation("R").unwrap();
        assert_eq!(
            AtomSemantics::NullFree.rel_atom(r, &tup![2, 3]),
            Truth3::True
        );
        assert_eq!(
            AtomSemantics::NullFree.rel_atom(r, &tup![9, 9]),
            Truth3::False
        );
        assert_eq!(
            AtomSemantics::NullFree.rel_atom(r, &tup![1, Value::null(0)]),
            Truth3::Unknown
        );
    }

    #[test]
    fn quantifiers_over_active_domain() {
        let d = db();
        // ∃x S(x) is true.
        let phi = Formula::exists("x", Formula::rel("S", [x()]));
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Sql).unwrap(),
            Truth3::True
        );
        // ∀x S(x) is false under SQL semantics (constant 2 is not in S and
        // the atom is two-valued for constants).
        let phi = Formula::forall("x", Formula::rel("S", [x()]));
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Sql).unwrap(),
            Truth3::False
        );
    }

    #[test]
    fn quantifiers_on_empty_database() {
        let d = database_from_literal([("R", vec!["a"], vec![])]);
        let phi = Formula::exists("x", Formula::rel("R", [x()]));
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Boolean).unwrap(),
            Truth3::False
        );
        let phi = Formula::forall("x", Formula::rel("R", [x()]));
        assert_eq!(
            eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Boolean).unwrap(),
            Truth3::True
        );
    }

    #[test]
    fn assertion_operator_collapses_unknown_to_false() {
        let d = db();
        // x = ⊥ is u under SQL semantics; asserted it becomes f, so the
        // negation of the asserted atom is t (SQL's NOT IN behaviour).
        let mut a = Assignment::new();
        a.bind("x", Value::int(1));
        let eq_null = Formula::eq(x(), Term::Var("y".into()));
        let mut ab = a.clone();
        ab.bind("y", Value::null(0));
        assert_eq!(
            eval_formula(&eq_null, &d, &ab, AtomSemantics::Sql).unwrap(),
            Truth3::Unknown
        );
        assert_eq!(
            eval_formula(&eq_null.clone().assert(), &d, &ab, AtomSemantics::Sql).unwrap(),
            Truth3::False
        );
        assert_eq!(
            eval_formula(&eq_null.assert().not(), &d, &ab, AtomSemantics::Sql).unwrap(),
            Truth3::True
        );
    }

    #[test]
    fn errors_for_malformed_inputs() {
        let d = db();
        let phi = Formula::rel("Nope", [x()]);
        let mut a = Assignment::new();
        a.bind("x", Value::int(1));
        assert!(matches!(
            eval_formula(&phi, &d, &a, AtomSemantics::Boolean),
            Err(LogicError::UnknownRelation(_))
        ));
        let phi = Formula::rel("R", [x()]);
        assert!(matches!(
            eval_formula(&phi, &d, &a, AtomSemantics::Boolean),
            Err(LogicError::ArityMismatch { .. })
        ));
        let phi = Formula::eq(x(), Term::var("unbound"));
        assert!(matches!(
            eval_formula(&phi, &d, &a, AtomSemantics::Boolean),
            Err(LogicError::UnboundVariable(_))
        ));
    }

    #[test]
    fn query_answers_collects_true_tuples() {
        let d = db();
        // φ(x) = S(x): under SQL semantics the null tuple is in S literally,
        // so both 1 and ⊥1 answer; under null-free semantics ⊥1 gives u.
        let phi = Formula::rel("S", [x()]);
        let sql = query_answers(&phi, &["x"], &d, AtomSemantics::Sql).unwrap();
        assert!(sql.contains(&tup![1]));
        assert!(sql.contains(&tup![Value::null(1)]));
        let nf = query_answers(&phi, &["x"], &d, AtomSemantics::NullFree).unwrap();
        assert!(nf.contains(&tup![1]));
        assert!(!nf.contains(&tup![Value::null(1)]));
        let unknowns =
            answers_with_value(&phi, &["x"], &d, AtomSemantics::NullFree, Truth3::Unknown).unwrap();
        assert!(unknowns.contains(&tup![Value::null(1)]));
    }

    #[test]
    fn boolean_query_answers_have_arity_zero() {
        let d = db();
        let phi = Formula::exists("x", Formula::rel("S", [x()]));
        let out = query_answers(&phi, &[], &d, AtomSemantics::Boolean).unwrap();
        assert!(out.as_bool());
        assert_eq!(out.arity(), 0);
    }
}
