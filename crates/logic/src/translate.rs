//! Translation of many-valued first-order logics into Boolean first-order
//! logic (Theorems 5.4 and 5.5 of the survey).
//!
//! The key observation of §5.2 is that, although SQL evaluates conditions in
//! Kleene's three-valued logic, the resulting query language is *no more
//! expressive* than ordinary Boolean first-order logic: for every formula
//! `φ` of `FO(L3v)` (under a mixed atom semantics) and every truth value
//! `τ`, there is a Boolean formula `ψτ` with `⟦φ⟧_{D,ā} = τ` iff
//! `D ⊨ ψτ(ā)`. The same holds for `FO↑SQL`, the extension with the
//! assertion operator that captures real SQL evaluation (Theorem 5.5).
//!
//! The translation is the classic "pair of certificates" construction: each
//! formula is mapped to a pair `(pos, neg)` of Boolean formulae
//! characterising where it is `t` and where it is `f`; `u` is the complement
//! of both.

use crate::fo::{Formula, Term};
use crate::semantics::AtomSemantics;
use crate::truth::Truth3;
use crate::{LogicError, Result};

/// The pair of Boolean certificates for a many-valued formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BooleanCapture {
    /// Boolean formula holding exactly where the source formula is `t`.
    pub pos: Formula,
    /// Boolean formula holding exactly where the source formula is `f`.
    pub neg: Formula,
}

impl BooleanCapture {
    /// The Boolean formula characterising a given truth value of the source
    /// formula (`u` is captured by `¬pos ∧ ¬neg`).
    pub fn for_value(&self, value: Truth3) -> Formula {
        match value {
            Truth3::True => self.pos.clone(),
            Truth3::False => self.neg.clone(),
            Truth3::Unknown => self.pos.clone().not().and(self.neg.clone().not()),
        }
    }
}

/// A conjunction of `const(t)` tests over the given terms (the guard that
/// makes null-involving comparisons fall into the `u` region).
fn const_guard(terms: &[Term]) -> Formula {
    let mut out: Option<Formula> = None;
    for t in terms {
        let test = Formula::ConstTest(t.clone());
        out = Some(match out {
            None => test,
            Some(acc) => acc.and(test),
        });
    }
    out.unwrap_or_else(|| {
        // No terms: the guard is vacuously true; encode as const(c) for a
        // fixed constant, which always holds.
        Formula::ConstTest(Term::constant(0))
    })
}

/// Translate a formula of `FO(L3v)` (optionally with the assertion operator,
/// i.e. `FO↑SQL`) under the given atom semantics into its Boolean
/// certificates.
///
/// Supported atom semantics: [`AtomSemantics::Boolean`],
/// [`AtomSemantics::NullFree`], [`AtomSemantics::Sql`], and
/// [`AtomSemantics::Unification`] *for equality atoms only* — the
/// unification semantics of relational atoms needs an explicit encoding of
/// tuple unifiability which is outside the scope of this translation (its
/// correctness guarantees are exercised directly via
/// [`crate::semantics::eval_formula`] instead).
///
/// # Errors
///
/// Returns [`LogicError::UnknownRelation`]-free structural errors only:
/// specifically, an error when a relational atom is translated under the
/// unification semantics.
pub fn to_boolean(formula: &Formula, semantics: AtomSemantics) -> Result<BooleanCapture> {
    match formula {
        Formula::Rel(name, terms) => match semantics {
            AtomSemantics::Boolean | AtomSemantics::Sql => Ok(BooleanCapture {
                pos: Formula::rel(name.clone(), terms.clone()),
                neg: Formula::rel(name.clone(), terms.clone()).not(),
            }),
            AtomSemantics::NullFree => {
                let guard = const_guard(terms);
                Ok(BooleanCapture {
                    pos: Formula::rel(name.clone(), terms.clone()).and(guard.clone()),
                    neg: Formula::rel(name.clone(), terms.clone()).not().and(guard),
                })
            }
            AtomSemantics::Unification => Err(LogicError::AssertionNotSupported),
        },
        Formula::Eq(a, b) => {
            let eq = Formula::eq(a.clone(), b.clone());
            match semantics {
                AtomSemantics::Boolean => Ok(BooleanCapture {
                    pos: eq.clone(),
                    neg: eq.not(),
                }),
                AtomSemantics::NullFree | AtomSemantics::Sql => {
                    let guard = const_guard(&[a.clone(), b.clone()]);
                    Ok(BooleanCapture {
                        pos: eq.clone().and(guard.clone()),
                        neg: eq.not().and(guard),
                    })
                }
                AtomSemantics::Unification => {
                    // ⟦x = y⟧unif: t iff syntactically equal, f iff distinct
                    // constants, u otherwise.
                    let guard = const_guard(&[a.clone(), b.clone()]);
                    Ok(BooleanCapture {
                        pos: eq.clone(),
                        neg: eq.not().and(guard),
                    })
                }
            }
        }
        Formula::ConstTest(t) => Ok(BooleanCapture {
            pos: Formula::ConstTest(t.clone()),
            neg: Formula::NullTest(t.clone()),
        }),
        Formula::NullTest(t) => Ok(BooleanCapture {
            pos: Formula::NullTest(t.clone()),
            neg: Formula::ConstTest(t.clone()),
        }),
        Formula::Not(inner) => {
            let inner = to_boolean(inner, semantics)?;
            Ok(BooleanCapture {
                pos: inner.neg,
                neg: inner.pos,
            })
        }
        Formula::And(a, b) => {
            let (a, b) = (to_boolean(a, semantics)?, to_boolean(b, semantics)?);
            Ok(BooleanCapture {
                pos: a.pos.clone().and(b.pos.clone()),
                neg: a.neg.or(b.neg),
            })
        }
        Formula::Or(a, b) => {
            let (a, b) = (to_boolean(a, semantics)?, to_boolean(b, semantics)?);
            Ok(BooleanCapture {
                pos: a.pos.or(b.pos),
                neg: a.neg.and(b.neg),
            })
        }
        Formula::Exists(v, body) => {
            let body = to_boolean(body, semantics)?;
            Ok(BooleanCapture {
                pos: Formula::exists(v.clone(), body.pos),
                neg: Formula::forall(v.clone(), body.neg),
            })
        }
        Formula::Forall(v, body) => {
            let body = to_boolean(body, semantics)?;
            Ok(BooleanCapture {
                pos: Formula::forall(v.clone(), body.pos),
                neg: Formula::exists(v.clone(), body.neg),
            })
        }
        Formula::Assert(inner) => {
            let inner = to_boolean(inner, semantics)?;
            Ok(BooleanCapture {
                pos: inner.pos.clone(),
                neg: inner.pos.not(),
            })
        }
    }
}

/// Convenience wrapper: the Boolean formula that holds exactly where the
/// many-valued formula evaluates to the given truth value (Theorem 5.4's
/// `ψτ`).
///
/// # Errors
///
/// As [`to_boolean`].
pub fn capture_value(
    formula: &Formula,
    semantics: AtomSemantics,
    value: Truth3,
) -> Result<Formula> {
    Ok(to_boolean(formula, semantics)?.for_value(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{answers_with_value, eval_formula, query_answers, Assignment};
    use certa_data::{database_from_literal, tup, Database, Value};

    fn x() -> Term {
        Term::var("x")
    }

    fn y() -> Term {
        Term::var("y")
    }

    fn db() -> Database {
        database_from_literal([
            (
                "R",
                vec!["a", "b"],
                vec![tup![1, Value::null(0)], tup![2, 3], tup![Value::null(1), 4]],
            ),
            ("S", vec!["a"], vec![tup![1], tup![Value::null(2)], tup![4]]),
        ])
    }

    /// Exhaustively check that the Boolean capture agrees with the
    /// three-valued evaluation on every assignment of the free variables.
    fn check_capture(formula: &Formula, free: &[&str], db: &Database, sem: AtomSemantics) {
        let capture = to_boolean(formula, sem).expect("translation should succeed");
        for target in Truth3::ALL {
            let expected = answers_with_value(formula, free, db, sem, target).unwrap();
            let boolean = capture.for_value(target);
            let got = query_answers(&boolean, free, db, AtomSemantics::Boolean).unwrap();
            assert_eq!(
                expected, got,
                "mismatch for {formula} at {target} under {sem:?}"
            );
        }
    }

    #[test]
    fn sql_equality_atom_capture() {
        let phi = Formula::eq(x(), y());
        check_capture(&phi, &["x", "y"], &db(), AtomSemantics::Sql);
        check_capture(&phi, &["x", "y"], &db(), AtomSemantics::NullFree);
        check_capture(&phi, &["x", "y"], &db(), AtomSemantics::Unification);
        check_capture(&phi, &["x", "y"], &db(), AtomSemantics::Boolean);
    }

    #[test]
    fn sql_relation_atom_capture() {
        let phi = Formula::rel("S", [x()]);
        check_capture(&phi, &["x"], &db(), AtomSemantics::Sql);
        check_capture(&phi, &["x"], &db(), AtomSemantics::NullFree);
        check_capture(&phi, &["x"], &db(), AtomSemantics::Boolean);
    }

    #[test]
    fn unification_relation_atom_is_rejected() {
        let phi = Formula::rel("S", [x()]);
        assert!(to_boolean(&phi, AtomSemantics::Unification).is_err());
    }

    #[test]
    fn connectives_and_quantifiers_capture() {
        // φ(x) = ∃y (R(x, y) ∧ ¬(y = 3))
        let phi = Formula::exists(
            "y",
            Formula::rel("R", [x(), y()]).and(Formula::eq(y(), Term::constant(3)).not()),
        );
        check_capture(&phi, &["x"], &db(), AtomSemantics::Sql);
        check_capture(&phi, &["x"], &db(), AtomSemantics::NullFree);

        // ψ(x) = ∀y (¬R(x, y) ∨ S(y))
        let psi = Formula::forall(
            "y",
            Formula::rel("R", [x(), y()])
                .not()
                .or(Formula::rel("S", [y()])),
        );
        check_capture(&psi, &["x"], &db(), AtomSemantics::Sql);
        check_capture(&psi, &["x"], &db(), AtomSemantics::NullFree);
    }

    #[test]
    fn assertion_capture_matches_fo_up_sql() {
        // SQL's WHERE-clause behaviour: ↑(x = y) under the mixed semantics.
        let phi = Formula::eq(x(), y()).assert();
        check_capture(&phi, &["x", "y"], &db(), AtomSemantics::Sql);
        // A NOT IN-style pattern: ¬↑∃y (S(y) ∧ x = y).
        let not_in = Formula::exists("y", Formula::rel("S", [y()]).and(Formula::eq(x(), y())))
            .assert()
            .not();
        check_capture(&not_in, &["x"], &db(), AtomSemantics::Sql);
    }

    #[test]
    fn null_and_const_tests_capture() {
        let phi = Formula::NullTest(x()).or(Formula::ConstTest(x()));
        check_capture(&phi, &["x"], &db(), AtomSemantics::Sql);
        // The disjunction is always t, never u — the capture of u is empty.
        let cap = to_boolean(&phi, AtomSemantics::Sql).unwrap();
        let u_answers = query_answers(
            &cap.for_value(Truth3::Unknown),
            &["x"],
            &db(),
            AtomSemantics::Boolean,
        )
        .unwrap();
        assert!(u_answers.is_empty());
    }

    #[test]
    fn boolean_sentence_capture() {
        // Sentence: ∃x (S(x) ∧ x = 1) — true; its capture must agree.
        let phi = Formula::exists(
            "x",
            Formula::rel("S", [x()]).and(Formula::eq(x(), Term::constant(1))),
        );
        let d = db();
        let val = eval_formula(&phi, &d, &Assignment::new(), AtomSemantics::Sql).unwrap();
        assert_eq!(val, Truth3::True);
        let cap = to_boolean(&phi, AtomSemantics::Sql).unwrap();
        assert!(crate::semantics::eval_classical(
            &cap.for_value(Truth3::True),
            &d,
            &Assignment::new()
        )
        .unwrap());
        assert!(!crate::semantics::eval_classical(
            &cap.for_value(Truth3::False),
            &d,
            &Assignment::new()
        )
        .unwrap());
    }

    #[test]
    fn for_value_unknown_is_complement() {
        let phi = Formula::eq(x(), Term::constant(1));
        let cap = to_boolean(&phi, AtomSemantics::Sql).unwrap();
        let u = cap.for_value(Truth3::Unknown);
        // On the null value the equality is u, so ψu must hold.
        let mut a = Assignment::new();
        a.bind("x", Value::null(0));
        assert!(crate::semantics::eval_classical(&u, &db(), &a).unwrap());
        a.bind("x", Value::int(1));
        assert!(!crate::semantics::eval_classical(&u, &db(), &a).unwrap());
    }
}
