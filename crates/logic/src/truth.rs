//! Truth values and propositional many-valued logics.
//!
//! A propositional many-valued logic is a pair `(T, Ω)` of a set of truth
//! values and a set of connectives (§5 of the survey). This module provides:
//!
//! * [`Truth3`] and [`Kleene`]: Kleene's three-valued logic `L3v` (Figure 3
//!   of the paper), the logic underlying SQL, plus Bochvar's *assertion*
//!   operator `↑` which collapses `u` to `f` (the `L3v↑` logic of §5.2);
//! * [`Truth6`] and [`SixValued`]: the six-valued logic `L6v` derived in
//!   §5.2 from epistemic modalities over possible-worlds interpretations.
//!   Its truth tables are *not* hard-coded: they are derived by enumerating
//!   small propositional interpretations `(W, t, f)` and taking, for each
//!   pair of argument values, the most general value consistent with every
//!   realizable outcome (the greatest lower bound in the knowledge order).
//!   This follows the construction in the paper and is what Theorem 5.3 is
//!   checked against in the test-suite and the E7 experiment.

use std::fmt;

/// Kleene's three truth values: true, false, unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Truth3 {
    /// True.
    True,
    /// False.
    False,
    /// Unknown — the no-information value, bottom of the knowledge order.
    Unknown,
}

impl Truth3 {
    /// All three truth values.
    pub const ALL: [Truth3; 3] = [Truth3::True, Truth3::False, Truth3::Unknown];

    /// Embed a Boolean.
    pub const fn from_bool(b: bool) -> Truth3 {
        if b {
            Truth3::True
        } else {
            Truth3::False
        }
    }

    /// Kleene conjunction.
    pub const fn and(self, other: Truth3) -> Truth3 {
        match (self, other) {
            (Truth3::False, _) | (_, Truth3::False) => Truth3::False,
            (Truth3::True, Truth3::True) => Truth3::True,
            _ => Truth3::Unknown,
        }
    }

    /// Kleene disjunction.
    pub const fn or(self, other: Truth3) -> Truth3 {
        match (self, other) {
            (Truth3::True, _) | (_, Truth3::True) => Truth3::True,
            (Truth3::False, Truth3::False) => Truth3::False,
            _ => Truth3::Unknown,
        }
    }

    /// Kleene negation.
    pub const fn not(self) -> Truth3 {
        match self {
            Truth3::True => Truth3::False,
            Truth3::False => Truth3::True,
            Truth3::Unknown => Truth3::Unknown,
        }
    }

    /// Bochvar's assertion operator `↑`: maps `t` to `t` and both `f` and
    /// `u` to `f`. This is the operator SQL implicitly applies at the end of
    /// every `WHERE` clause (§5.2).
    pub const fn assert(self) -> Truth3 {
        match self {
            Truth3::True => Truth3::True,
            _ => Truth3::False,
        }
    }

    /// `true` iff the value is `t`.
    pub const fn is_true(self) -> bool {
        matches!(self, Truth3::True)
    }

    /// `true` iff the value is `f`.
    pub const fn is_false(self) -> bool {
        matches!(self, Truth3::False)
    }

    /// `true` iff the value is `u`.
    pub const fn is_unknown(self) -> bool {
        matches!(self, Truth3::Unknown)
    }

    /// The knowledge order `⪯` of §5.1: `u ⪯ t`, `u ⪯ f`, and every value is
    /// below itself; `t` and `f` are incomparable.
    pub const fn knowledge_le(self, other: Truth3) -> bool {
        matches!(
            (self, other),
            (Truth3::Unknown, _) | (Truth3::True, Truth3::True) | (Truth3::False, Truth3::False)
        )
    }
}

impl fmt::Display for Truth3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth3::True => write!(f, "t"),
            Truth3::False => write!(f, "f"),
            Truth3::Unknown => write!(f, "u"),
        }
    }
}

impl From<bool> for Truth3 {
    fn from(b: bool) -> Self {
        Truth3::from_bool(b)
    }
}

/// A zero-sized handle exposing Kleene's logic through the generic
/// [`PropositionalLogic`] interface used by the property checkers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Kleene;

/// A propositional many-valued logic presented extensionally: a finite set
/// of truth values with `∧`, `∨`, `¬` tables and a knowledge order.
///
/// The property checkers in [`crate::props`] are generic over this trait so
/// that the same machinery applies to `L2v`, `L3v`, `L3v↑` and `L6v`.
pub trait PropositionalLogic {
    /// The truth-value type.
    type Value: Copy + Eq + fmt::Debug;

    /// All truth values of the logic.
    fn values(&self) -> Vec<Self::Value>;
    /// Conjunction table.
    fn and(&self, a: Self::Value, b: Self::Value) -> Self::Value;
    /// Disjunction table.
    fn or(&self, a: Self::Value, b: Self::Value) -> Self::Value;
    /// Negation table.
    fn not(&self, a: Self::Value) -> Self::Value;
    /// Knowledge order `a ⪯ b` (reflexive, transitive).
    fn knowledge_le(&self, a: Self::Value, b: Self::Value) -> bool;
    /// The designated no-information value `τ₀` (bottom of the knowledge
    /// order), if the logic has one.
    fn bottom(&self) -> Option<Self::Value>;
}

impl PropositionalLogic for Kleene {
    type Value = Truth3;

    fn values(&self) -> Vec<Truth3> {
        Truth3::ALL.to_vec()
    }

    fn and(&self, a: Truth3, b: Truth3) -> Truth3 {
        a.and(b)
    }

    fn or(&self, a: Truth3, b: Truth3) -> Truth3 {
        a.or(b)
    }

    fn not(&self, a: Truth3) -> Truth3 {
        a.not()
    }

    fn knowledge_le(&self, a: Truth3, b: Truth3) -> bool {
        a.knowledge_le(b)
    }

    fn bottom(&self) -> Option<Truth3> {
        Some(Truth3::Unknown)
    }
}

/// The classical two-valued Boolean logic `L2v`, i.e. Kleene's logic
/// restricted to `{t, f}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Boolean2;

impl PropositionalLogic for Boolean2 {
    type Value = Truth3;

    fn values(&self) -> Vec<Truth3> {
        vec![Truth3::True, Truth3::False]
    }

    fn and(&self, a: Truth3, b: Truth3) -> Truth3 {
        a.and(b)
    }

    fn or(&self, a: Truth3, b: Truth3) -> Truth3 {
        a.or(b)
    }

    fn not(&self, a: Truth3) -> Truth3 {
        a.not()
    }

    fn knowledge_le(&self, a: Truth3, b: Truth3) -> bool {
        a == b
    }

    fn bottom(&self) -> Option<Truth3> {
        None
    }
}

/// The six truth values of the epistemic logic `L6v` (§5.2).
///
/// Each value records what is known about a proposition `α` across a set of
/// possible worlds with possibly partial information:
///
/// | value | meaning | profile `(t(α), f(α))` |
/// |---|---|---|
/// | `True` | α true in all worlds | `(W, ∅)` |
/// | `False` | α false in all worlds | `(∅, W)` |
/// | `Sometimes` | true in some worlds, false in others | `(partial, partial)` |
/// | `SometimesTrue` | true somewhere, never known false | `(partial, ∅)` |
/// | `SometimesFalse` | false somewhere, never known true | `(∅, partial)` |
/// | `Unknown` | no information at all | `(∅, ∅)` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Truth6 {
    /// α holds in every world.
    True,
    /// α fails in every world.
    False,
    /// α holds in some worlds and fails in others.
    Sometimes,
    /// α holds in some world; it is not known to fail anywhere.
    SometimesTrue,
    /// α fails in some world; it is not known to hold anywhere.
    SometimesFalse,
    /// Nothing is known about α.
    Unknown,
}

impl Truth6 {
    /// All six truth values.
    pub const ALL: [Truth6; 6] = [
        Truth6::True,
        Truth6::False,
        Truth6::Sometimes,
        Truth6::SometimesTrue,
        Truth6::SometimesFalse,
        Truth6::Unknown,
    ];

    /// Short name as used in the paper (`t`, `f`, `s`, `st`, `sf`, `u`).
    pub fn symbol(self) -> &'static str {
        match self {
            Truth6::True => "t",
            Truth6::False => "f",
            Truth6::Sometimes => "s",
            Truth6::SometimesTrue => "st",
            Truth6::SometimesFalse => "sf",
            Truth6::Unknown => "u",
        }
    }

    /// The knowledge order on `L6v`: `u` is the bottom; `st ⪯ t`, `st ⪯ s`,
    /// `sf ⪯ f`, `sf ⪯ s`; `t`, `f`, `s` are maximal and pairwise
    /// incomparable.
    pub fn knowledge_le(self, other: Truth6) -> bool {
        self == other
            || matches!(
                (self, other),
                (Truth6::Unknown, _)
                    | (Truth6::SometimesTrue, Truth6::True)
                    | (Truth6::SometimesTrue, Truth6::Sometimes)
                    | (Truth6::SometimesFalse, Truth6::False)
                    | (Truth6::SometimesFalse, Truth6::Sometimes)
            )
    }

    /// Greatest lower bound in the knowledge order.
    pub fn knowledge_meet(self, other: Truth6) -> Truth6 {
        if self.knowledge_le(other) {
            return self;
        }
        if other.knowledge_le(self) {
            return other;
        }
        // The only non-trivial meets between incomparable elements:
        // t ⊓ s = st, f ⊓ s = sf; everything else falls to u.
        match (self, other) {
            (Truth6::True, Truth6::Sometimes) | (Truth6::Sometimes, Truth6::True) => {
                Truth6::SometimesTrue
            }
            (Truth6::False, Truth6::Sometimes) | (Truth6::Sometimes, Truth6::False) => {
                Truth6::SometimesFalse
            }
            _ => Truth6::Unknown,
        }
    }

    /// The restriction of a six-valued value to Kleene's three values, when
    /// it is one of them.
    pub fn as_truth3(self) -> Option<Truth3> {
        match self {
            Truth6::True => Some(Truth3::True),
            Truth6::False => Some(Truth3::False),
            Truth6::Unknown => Some(Truth3::Unknown),
            _ => None,
        }
    }
}

impl fmt::Display for Truth6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Per-world status of a proposition in a partial possible-worlds
/// interpretation: the world may satisfy it, falsify it, or say nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorldStatus {
    True,
    False,
    Gap,
}

const WORLD_STATUSES: [WorldStatus; 3] = [WorldStatus::True, WorldStatus::False, WorldStatus::Gap];

/// Abstract profile of a proposition over a world set: whether it is true
/// somewhere / everywhere and false somewhere / everywhere.
fn profile(statuses: &[WorldStatus]) -> Truth6 {
    let some_true = statuses.contains(&WorldStatus::True);
    let some_false = statuses.contains(&WorldStatus::False);
    let all_true = statuses.iter().all(|s| *s == WorldStatus::True);
    let all_false = statuses.iter().all(|s| *s == WorldStatus::False);
    match (some_true, some_false, all_true, all_false) {
        (_, _, true, _) => Truth6::True,
        (_, _, _, true) => Truth6::False,
        (true, true, _, _) => Truth6::Sometimes,
        (true, false, _, _) => Truth6::SometimesTrue,
        (false, true, _, _) => Truth6::SometimesFalse,
        (false, false, _, _) => Truth6::Unknown,
    }
}

/// Per-world conjunction: strong Kleene on the three world statuses.
fn world_and(a: WorldStatus, b: WorldStatus) -> WorldStatus {
    match (a, b) {
        (WorldStatus::False, _) | (_, WorldStatus::False) => WorldStatus::False,
        (WorldStatus::True, WorldStatus::True) => WorldStatus::True,
        _ => WorldStatus::Gap,
    }
}

fn world_or(a: WorldStatus, b: WorldStatus) -> WorldStatus {
    match (a, b) {
        (WorldStatus::True, _) | (_, WorldStatus::True) => WorldStatus::True,
        (WorldStatus::False, WorldStatus::False) => WorldStatus::False,
        _ => WorldStatus::Gap,
    }
}

fn world_not(a: WorldStatus) -> WorldStatus {
    match a {
        WorldStatus::True => WorldStatus::False,
        WorldStatus::False => WorldStatus::True,
        WorldStatus::Gap => WorldStatus::Gap,
    }
}

/// The six-valued logic `L6v`, with truth tables derived from the epistemic
/// construction of §5.2.
///
/// For every pair of argument values `(τ₁, τ₂)` and connective `ω`, the
/// derivation enumerates all interpretations over up to [`MAX_WORLDS`]
/// possible worlds in which `α` has value `τ₁` and `β` has value `τ₂`,
/// collects the values that `ω(α, β)` can take, and — when more than one is
/// consistent — chooses the most general one, i.e. the greatest lower bound
/// of the achievable set in the knowledge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SixValued {
    and_table: [[Truth6; 6]; 6],
    or_table: [[Truth6; 6]; 6],
    not_table: [Truth6; 6],
}

/// Number of possible worlds used when deriving the `L6v` tables. Four
/// worlds are enough to realize every pair of profiles and every achievable
/// outcome; we use five for safety margin (the tables are stable from four
/// onward, which the tests check).
pub const MAX_WORLDS: usize = 5;

impl Default for SixValued {
    fn default() -> Self {
        Self::derive(MAX_WORLDS)
    }
}

impl SixValued {
    /// Derive the truth tables using interpretations with up to `max_worlds`
    /// worlds.
    pub fn derive(max_worlds: usize) -> Self {
        let mut and_sets = vec![vec![Vec::new(); 6]; 6];
        let mut or_sets = vec![vec![Vec::new(); 6]; 6];
        let mut not_sets = vec![Vec::new(); 6];

        // Enumerate interpretations: a number of worlds and, per world, a
        // status for α and a status for β.
        for n in 1..=max_worlds {
            let combos = 9usize.pow(n as u32);
            for mut code in 0..combos {
                let mut alpha = Vec::with_capacity(n);
                let mut beta = Vec::with_capacity(n);
                for _ in 0..n {
                    let pair = code % 9;
                    code /= 9;
                    alpha.push(WORLD_STATUSES[pair % 3]);
                    beta.push(WORLD_STATUSES[pair / 3]);
                }
                let pa = profile(&alpha) as usize;
                let pb = profile(&beta) as usize;
                let conj: Vec<WorldStatus> = alpha
                    .iter()
                    .zip(beta.iter())
                    .map(|(a, b)| world_and(*a, *b))
                    .collect();
                let disj: Vec<WorldStatus> = alpha
                    .iter()
                    .zip(beta.iter())
                    .map(|(a, b)| world_or(*a, *b))
                    .collect();
                let neg: Vec<WorldStatus> = alpha.iter().map(|a| world_not(*a)).collect();
                push_unique(&mut and_sets[pa][pb], profile(&conj));
                push_unique(&mut or_sets[pa][pb], profile(&disj));
                push_unique(&mut not_sets[pa], profile(&neg));
            }
        }

        let mut and_table = [[Truth6::Unknown; 6]; 6];
        let mut or_table = [[Truth6::Unknown; 6]; 6];
        let mut not_table = [Truth6::Unknown; 6];
        for (i, a) in Truth6::ALL.iter().enumerate() {
            for (j, _b) in Truth6::ALL.iter().enumerate() {
                and_table[i][j] = most_general(&and_sets[i][j]);
                or_table[i][j] = most_general(&or_sets[i][j]);
            }
            not_table[i] = most_general(&not_sets[i]);
            // Every profile is realizable with at least one world, so the
            // achievable sets are never empty.
            debug_assert!(!not_sets[i].is_empty(), "profile {a:?} unrealizable");
        }
        SixValued {
            and_table,
            or_table,
            not_table,
        }
    }

    /// Conjunction in `L6v`.
    pub fn and6(&self, a: Truth6, b: Truth6) -> Truth6 {
        self.and_table[a as usize][b as usize]
    }

    /// Disjunction in `L6v`.
    pub fn or6(&self, a: Truth6, b: Truth6) -> Truth6 {
        self.or_table[a as usize][b as usize]
    }

    /// Negation in `L6v`.
    pub fn not6(&self, a: Truth6) -> Truth6 {
        self.not_table[a as usize]
    }
}

fn push_unique(v: &mut Vec<Truth6>, t: Truth6) {
    if !v.contains(&t) {
        v.push(t);
    }
}

/// The most general value consistent with every achievable outcome: the
/// greatest lower bound of the set in the knowledge order.
fn most_general(achievable: &[Truth6]) -> Truth6 {
    let mut iter = achievable.iter();
    let first = *iter.next().expect("most_general: empty achievable set");
    iter.fold(first, |acc, t| acc.knowledge_meet(*t))
}

impl PropositionalLogic for SixValued {
    type Value = Truth6;

    fn values(&self) -> Vec<Truth6> {
        Truth6::ALL.to_vec()
    }

    fn and(&self, a: Truth6, b: Truth6) -> Truth6 {
        self.and6(a, b)
    }

    fn or(&self, a: Truth6, b: Truth6) -> Truth6 {
        self.or6(a, b)
    }

    fn not(&self, a: Truth6) -> Truth6 {
        self.not6(a)
    }

    fn knowledge_le(&self, a: Truth6, b: Truth6) -> bool {
        a.knowledge_le(b)
    }

    fn bottom(&self) -> Option<Truth6> {
        Some(Truth6::Unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_truth_tables_match_figure_3() {
        use Truth3::{False as F, True as T, Unknown as U};
        // ∧ table.
        assert_eq!(T.and(T), T);
        assert_eq!(T.and(F), F);
        assert_eq!(T.and(U), U);
        assert_eq!(F.and(U), F);
        assert_eq!(U.and(U), U);
        // ∨ table.
        assert_eq!(T.or(F), T);
        assert_eq!(F.or(F), F);
        assert_eq!(F.or(U), U);
        assert_eq!(T.or(U), T);
        assert_eq!(U.or(U), U);
        // ¬ table.
        assert_eq!(T.not(), F);
        assert_eq!(F.not(), T);
        assert_eq!(U.not(), U);
    }

    #[test]
    fn assertion_operator_collapses_unknown() {
        assert_eq!(Truth3::True.assert(), Truth3::True);
        assert_eq!(Truth3::False.assert(), Truth3::False);
        assert_eq!(Truth3::Unknown.assert(), Truth3::False);
    }

    #[test]
    fn knowledge_order_on_three_values() {
        assert!(Truth3::Unknown.knowledge_le(Truth3::True));
        assert!(Truth3::Unknown.knowledge_le(Truth3::False));
        assert!(Truth3::True.knowledge_le(Truth3::True));
        assert!(!Truth3::True.knowledge_le(Truth3::False));
        assert!(!Truth3::True.knowledge_le(Truth3::Unknown));
    }

    #[test]
    fn assertion_does_not_preserve_knowledge_order() {
        // u ⪯ t but ↑u = f is not ⪯ ↑t = t — the culprit identified in §5.2.
        assert!(Truth3::Unknown.knowledge_le(Truth3::True));
        assert!(!Truth3::Unknown.assert().knowledge_le(Truth3::True.assert()));
    }

    #[test]
    fn boolean_restriction() {
        let l2 = Boolean2;
        assert_eq!(l2.values().len(), 2);
        assert_eq!(l2.bottom(), None);
        assert_eq!(l2.and(Truth3::True, Truth3::False), Truth3::False);
    }

    #[test]
    fn six_valued_knowledge_order_and_meet() {
        use Truth6::*;
        assert!(Unknown.knowledge_le(True));
        assert!(SometimesTrue.knowledge_le(True));
        assert!(SometimesTrue.knowledge_le(Sometimes));
        assert!(!SometimesTrue.knowledge_le(False));
        assert!(!True.knowledge_le(Sometimes));
        assert_eq!(True.knowledge_meet(Sometimes), SometimesTrue);
        assert_eq!(False.knowledge_meet(Sometimes), SometimesFalse);
        assert_eq!(True.knowledge_meet(False), Unknown);
        assert_eq!(True.knowledge_meet(True), True);
        assert_eq!(SometimesTrue.knowledge_meet(SometimesFalse), Unknown);
    }

    #[test]
    fn six_valued_tables_restrict_to_kleene() {
        // Theorem 5.3's easy half: on {t, f, u} the derived tables are
        // exactly Kleene's.
        let l6 = SixValued::default();
        use Truth6::*;
        for a in [True, False, Unknown] {
            for b in [True, False, Unknown] {
                let a3 = a.as_truth3().unwrap();
                let b3 = b.as_truth3().unwrap();
                assert_eq!(l6.and6(a, b).as_truth3(), Some(a3.and(b3)), "{a}∧{b}");
                assert_eq!(l6.or6(a, b).as_truth3(), Some(a3.or(b3)), "{a}∨{b}");
            }
            assert_eq!(l6.not6(a).as_truth3(), Some(a.as_truth3().unwrap().not()));
        }
    }

    #[test]
    fn six_valued_negation_swaps_sometimes_true_false() {
        let l6 = SixValued::default();
        assert_eq!(l6.not6(Truth6::SometimesTrue), Truth6::SometimesFalse);
        assert_eq!(l6.not6(Truth6::SometimesFalse), Truth6::SometimesTrue);
        assert_eq!(l6.not6(Truth6::Sometimes), Truth6::Sometimes);
    }

    #[test]
    fn six_valued_is_not_idempotent() {
        // s ∧ s can come out as something other than s, because two
        // different "sometimes" propositions can jointly be unsatisfiable.
        let l6 = SixValued::default();
        let s = Truth6::Sometimes;
        assert_ne!(l6.and6(s, s), s);
    }

    #[test]
    fn derivation_is_stable_in_number_of_worlds() {
        // Tables derived with 4 and with 5 worlds agree, so the enumeration
        // has converged.
        assert_eq!(SixValued::derive(4), SixValued::derive(5));
    }

    #[test]
    fn six_valued_conjunction_spot_checks() {
        let l6 = SixValued::default();
        use Truth6::*;
        // f is annihilating for ∧ and t for ∨ — these hold in every world.
        for v in Truth6::ALL {
            assert_eq!(l6.and6(False, v), False, "f ∧ {v}");
            assert_eq!(l6.or6(True, v), True, "t ∨ {v}");
        }
        // t ∧ st: in every realization α is true everywhere, β true
        // somewhere and never false, so the conjunction is true somewhere,
        // never false — st.
        assert_eq!(l6.and6(True, SometimesTrue), SometimesTrue);
        // u against anything gives a value below it in knowledge.
        for v in Truth6::ALL {
            assert!(l6.and6(Unknown, v).knowledge_le(v) || l6.and6(Unknown, v) == False);
        }
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Truth6::SometimesTrue.to_string(), "st");
        assert_eq!(Truth3::Unknown.to_string(), "u");
        assert_eq!(Truth6::Sometimes.symbol(), "s");
    }
}
