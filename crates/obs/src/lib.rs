//! Unified tracing + metrics for the certa workspace.
//!
//! This crate is the observability substrate every execution layer records
//! into. It is deliberately dependency-free and sits between `certa-data`
//! and `certa-algebra` in the dependency flow so that the physical engine,
//! the columnar mask executor, the morsel pool, the lineage forest, the
//! optimizer and the pipeline can all share one vocabulary:
//!
//! * **Spans** ([`span`], [`SpanGuard`]) — a TLS-ambient call tree, installed
//!   per request exactly like `certa_algebra::governor`. When no [`Trace`]
//!   is installed, opening a span is a single thread-local read and a
//!   branch (the `Span::noop` path); nothing is allocated and nothing is
//!   recorded, which is what keeps instrumented hot loops within noise of
//!   the uninstrumented build. Worker threads (the morsel pool, the world
//!   engine) carry the trace across the spawn boundary with an explicit
//!   [`SpanContext`] handle — [`context`] before spawning, [`attach`]
//!   inside the worker — so parallel execution nests under the operator
//!   that launched it.
//! * **Metrics** ([`metrics`], [`MetricId`], [`HistogramId`]) — a global
//!   registry of named counters and fixed-bucket histograms backed by
//!   plain atomics: lock-free on the hot path, snapshot-able between
//!   requests ([`Registry::snapshot`], [`Snapshot::delta`]). Per-run
//!   attribution (what one executor did, concurrent siblings excluded)
//!   goes through [`LocalMetrics`], a `Cell`-based view that mirrors every
//!   increment into the global registry — the existing `ExecStats` /
//!   `MaskStats` style structs are thin reads over it.
//! * **Traces** ([`Trace`]) — the recorded event buffer, exportable as
//!   Chrome `chrome://tracing` JSON ([`Trace::to_chrome_json`]) and
//!   reducible to a timing-free structural signature
//!   ([`Trace::structure_signature`]) used by the worker-count invariance
//!   property tests.

pub mod metrics;
pub mod span;

pub use metrics::{
    metrics, HistogramId, LocalMetrics, MetricId, Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use span::{
    attach, context, current_trace, install, instant, instant_detail, span, span_add, AttachGuard,
    Event, EventKind, InstallGuard, SpanContext, SpanGuard, Trace,
};
