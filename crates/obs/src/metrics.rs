//! Lock-free global metrics registry plus a `Cell`-based per-run view.
//!
//! The registry is a fixed, statically allocated table of atomic counters
//! and fixed-bucket histograms — no maps, no locks, no allocation on the
//! recording path. Identifiers are a closed enum so an increment compiles
//! to one indexed `fetch_add`. Snapshots subtract to per-request deltas.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! metric_ids {
    ($($variant:ident => $name:literal,)+) => {
        /// Every named counter in the workspace. Closed on purpose: a
        /// metric is an index into a static array, not a string lookup.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(u16)]
        pub enum MetricId { $($variant,)+ }

        /// Number of counters in the registry.
        pub const METRIC_COUNT: usize = 0 $(+ { let _ = $name; 1 })+;

        /// Dotted display names, indexed by `MetricId as usize`.
        pub const METRIC_NAMES: [&str; METRIC_COUNT] = [$($name,)+];
    };
}

metric_ids! {
    // Physical engine (per-PhysOp set/bag execution).
    PhysOps => "phys.ops",
    PhysRows => "phys.rows",
    // Columnar mask executor + kernels.
    MaskOps => "mask.ops",
    MaskRows => "mask.rows",
    MaskDistinctMasks => "mask.distinct_masks",
    MaskMorsels => "mask.morsels",
    MaskArenaWords => "mask.arena_words",
    // Morsel pool scheduling.
    MorselRuns => "morsel.runs",
    MorselWorkers => "morsel.workers",
    MorselClaimed => "morsel.claimed",
    MorselIdlePolls => "morsel.idle_polls",
    // WorldEngine chunked enumeration.
    WorldChunks => "worlds.chunks",
    WorldsEvaluated => "worlds.evaluated",
    WorldEarlyExits => "worlds.early_exits",
    // Lineage forest caches + node growth.
    LineageApplyHits => "lineage.apply_hits",
    LineageApplyMisses => "lineage.apply_misses",
    LineageCofactorHits => "lineage.cofactor_hits",
    LineageCofactorMisses => "lineage.cofactor_misses",
    LineageNodes => "lineage.nodes",
    // Optimizer rewrite passes.
    OptRuns => "opt.runs",
    OptPushdownNanos => "opt.pushdown_nanos",
    OptReorderNanos => "opt.reorder_nanos",
    OptPruneNanos => "opt.prune_nanos",
    // Pipeline plan cache + answer maintenance (lifetime, eviction-proof).
    CacheHits => "cache.plan_hits",
    CacheMisses => "cache.plan_misses",
    CacheEvictions => "cache.plan_evictions",
    AnswersServed => "cache.answers_served",
    AnswersRefined => "cache.answers_refined",
    AnswersDeltaMerged => "cache.answers_delta_merged",
    AnswersRecomputed => "cache.answers_recomputed",
    // Backend dispatch + degradation lattice.
    DispatchMask => "dispatch.mask",
    DispatchLineage => "dispatch.lineage",
    DispatchEnum => "dispatch.enum",
    VerdictExact => "verdict.exact",
    VerdictDegraded => "verdict.degraded",
    VerdictRefused => "verdict.refused",
    // Governor budget spend, mirrored after each governed run.
    GovernorRows => "governor.rows",
    GovernorArenaWords => "governor.arena_words",
    GovernorNodes => "governor.nodes",
    GovernorTrips => "governor.trips",
    // Fault injection audit trail.
    FaultChecks => "fault.checks",
    FaultFired => "fault.fired",
    // Durability: write-ahead log, snapshots, recovery.
    WalAppends => "wal.appends",
    WalAppendBytes => "wal.append_bytes",
    WalResetFrames => "wal.reset_frames",
    WalBadFrames => "wal.bad_frames",
    SnapshotWrites => "snapshot.writes",
    SnapshotBytes => "snapshot.bytes",
    RecoveryRuns => "recovery.runs",
    RecoveryReplayedFrames => "recovery.replayed_frames",
}

impl MetricId {
    /// The dotted display name (`"mask.rows"`, …).
    pub fn name(self) -> &'static str {
        METRIC_NAMES[self as usize]
    }
}

macro_rules! histogram_ids {
    ($($variant:ident => $name:literal,)+) => {
        /// Fixed-bucket (log2-of-microseconds) latency histograms.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(u16)]
        pub enum HistogramId { $($variant,)+ }

        /// Number of histograms in the registry.
        pub const HISTOGRAM_COUNT: usize = 0 $(+ { let _ = $name; 1 })+;

        /// Dotted display names, indexed by `HistogramId as usize`.
        pub const HISTOGRAM_NAMES: [&str; HISTOGRAM_COUNT] = [$($name,)+];
    };
}

histogram_ids! {
    PhysOpMicros => "phys.op_micros",
    MaskOpMicros => "mask.op_micros",
    MorselMicros => "morsel.morsel_micros",
    MorselsPerWorker => "morsel.per_worker",
    WorldChunkMicros => "worlds.chunk_micros",
    OptPassMicros => "opt.pass_micros",
    RequestMicros => "pipeline.request_micros",
    SnapshotMicros => "snapshot.micros",
    RecoveryMicros => "recovery.micros",
}

impl HistogramId {
    /// The dotted display name (`"morsel.per_worker"`, …).
    pub fn name(self) -> &'static str {
        HISTOGRAM_NAMES[self as usize]
    }
}

/// Buckets per histogram: bucket `i < 15` counts values `v` with
/// `log2(v+1) == i` (i.e. `v+1` in `[2^i, 2^(i+1))`); bucket 15 is the
/// unbounded overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 16;

fn bucket_of(value: u64) -> usize {
    let b = (64 - value.saturating_add(1).leading_zeros() - 1) as usize;
    b.min(HISTOGRAM_BUCKETS - 1)
}

/// The process-global registry: one atomic slot per counter, one fixed
/// bucket array per histogram. All recording is `Ordering::Relaxed` —
/// these are statistics, not synchronisation.
pub struct Registry {
    counters: [AtomicU64; METRIC_COUNT],
    histograms: [[AtomicU64; HISTOGRAM_BUCKETS]; HISTOGRAM_COUNT],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HISTOGRAM_BUCKETS] = [ZERO; HISTOGRAM_BUCKETS];

static REGISTRY: Registry = Registry {
    counters: [ZERO; METRIC_COUNT],
    histograms: [ZERO_ROW; HISTOGRAM_COUNT],
};

/// The process-global [`Registry`].
pub fn metrics() -> &'static Registry {
    &REGISTRY
}

impl Registry {
    /// Add `n` to a counter (lock-free, relaxed).
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        if n != 0 {
            self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one observation into a histogram (lock-free, relaxed).
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        self.histograms[id as usize][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, id: MetricId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter and histogram. Snapshots are
    /// cheap (a few hundred relaxed loads) and are meant to bracket a
    /// request: `after.delta(&before)` is that request's spend plus
    /// whatever concurrent work overlapped it.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            histograms: std::array::from_fn(|h| {
                std::array::from_fn(|b| self.histograms[h][b].load(Ordering::Relaxed))
            }),
        }
    }
}

/// A point-in-time copy of the registry (see [`Registry::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    counters: [u64; METRIC_COUNT],
    histograms: [[u64; HISTOGRAM_BUCKETS]; HISTOGRAM_COUNT],
}

impl Snapshot {
    /// Counter value by id.
    pub fn get(&self, id: MetricId) -> u64 {
        self.counters[id as usize]
    }

    /// Histogram bucket counts by id.
    pub fn buckets(&self, id: HistogramId) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.histograms[id as usize]
    }

    /// Pointwise `self - earlier` (saturating): the spend between two
    /// snapshots of the same registry.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: std::array::from_fn(|i| self.counters[i].saturating_sub(earlier.counters[i])),
            histograms: std::array::from_fn(|h| {
                std::array::from_fn(|b| {
                    self.histograms[h][b].saturating_sub(earlier.histograms[h][b])
                })
            }),
        }
    }

    /// Every counter with a non-zero value, in declaration order.
    pub fn nonzero_counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0)
            .map(|(i, v)| (METRIC_NAMES[i], *v))
    }

    /// Every histogram with at least one observation, in declaration order.
    pub fn nonzero_histograms(
        &self,
    ) -> impl Iterator<Item = (&'static str, &[u64; HISTOGRAM_BUCKETS])> + '_ {
        self.histograms
            .iter()
            .enumerate()
            .filter(|(_, b)| b.iter().any(|v| *v != 0))
            .map(|(i, b)| (HISTOGRAM_NAMES[i], b))
    }

    /// Render as a JSON object: counters as numbers, histograms as bucket
    /// arrays under a `"histograms"` key. Hand-built on purpose — the
    /// workspace has no serde and the shape is flat.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, v) in self.nonzero_counters() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{name}\": {v}"));
        }
        let hists: Vec<_> = self.nonzero_histograms().collect();
        if !hists.is_empty() {
            if !first {
                out.push_str(", ");
            }
            out.push_str("\"histograms\": {");
            for (i, (name, buckets)) in hists.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let cells: Vec<String> = buckets.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("\"{name}\": [{}]", cells.join(", ")));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// A per-run counter view: `Cell`-based (single-threaded, owned by one
/// executor) so one run's spend can be read back exactly even while
/// concurrent executors record into the same global registry. Every
/// increment is mirrored into the global [`Registry`] — this is the one
/// accounting path; `ExecStats` / `MaskStats` style structs are plain
/// reads over a `LocalMetrics`.
#[derive(Debug)]
pub struct LocalMetrics {
    values: [Cell<u64>; METRIC_COUNT],
}

impl Default for LocalMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalMetrics {
    /// A fresh all-zero view.
    pub fn new() -> Self {
        LocalMetrics {
            values: std::array::from_fn(|_| Cell::new(0)),
        }
    }

    /// Add `n` locally and in the global registry.
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        if n != 0 {
            let slot = &self.values[id as usize];
            slot.set(slot.get() + n);
            REGISTRY.add(id, n);
        }
    }

    /// This run's value for one counter.
    pub fn get(&self, id: MetricId) -> u64 {
        self.values[id as usize].get()
    }

    /// Reset the local view (the global registry is monotone and is not
    /// rolled back).
    pub fn reset(&self) {
        for slot in &self.values {
            slot.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2_with_overflow() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1 << 14), 14);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn local_mirrors_into_global() {
        let before = metrics().snapshot();
        let local = LocalMetrics::new();
        local.add(MetricId::MaskRows, 7);
        local.add(MetricId::MaskRows, 5);
        assert_eq!(local.get(MetricId::MaskRows), 12);
        let delta = metrics().snapshot().delta(&before);
        assert!(delta.get(MetricId::MaskRows) >= 12);
    }

    #[test]
    fn snapshot_json_is_flat_and_nonzero_only() {
        metrics().add(MetricId::PhysRows, 3);
        metrics().observe(HistogramId::PhysOpMicros, 100);
        let snap = metrics().snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"phys.rows\""));
        assert!(json.contains("\"histograms\""));
    }
}
