//! TLS-ambient spans and the recorded [`Trace`].
//!
//! The design deliberately mirrors `certa_algebra::governor`: a request
//! installs a [`Trace`] into thread-local storage ([`install`]), every
//! layer below opens spans against whatever is ambient ([`span`]), and the
//! guard restores the previous state on drop — nesting and panic-safe.
//! Worker threads do not inherit TLS, so pools capture a [`SpanContext`]
//! before spawning ([`context`]) and [`attach`] it inside the worker: the
//! worker gets its own Chrome `tid` while its spans stay parented under
//! the operator span that launched the pool.
//!
//! When no trace is installed every entry point is a noop — one
//! thread-local read and a branch, no allocation, no time stamp. That is
//! the `Span::noop` path the disabled-overhead bench assertion measures.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What kind of trace event a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span: has a duration (Chrome `"X"` complete event).
    Complete,
    /// A point-in-time marker (Chrome `"i"` instant event).
    Instant,
}

/// One recorded trace event. `ts_us`/`dur_us` are microseconds relative
/// to the trace's start; `parent == 0` means top-level.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span or marker name (`"op:HashJoin"`, `"morsel"`, `"fault:fired"`).
    pub name: Cow<'static, str>,
    /// Unique id within the trace (1-based).
    pub id: u64,
    /// Id of the enclosing span (0 = none).
    pub parent: u64,
    /// Chrome thread lane (1 = installing thread, workers allocate fresh).
    pub tid: u64,
    /// Start, microseconds since trace start.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Complete span or instant marker.
    pub kind: EventKind,
    /// Accumulated numeric arguments (rows, arena words, …).
    pub args: Vec<(&'static str, u64)>,
    /// Optional free-form label (an operator's rendered description, a
    /// fault site); structural, not timing.
    pub detail: Option<String>,
}

struct TraceInner {
    start: Instant,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    events: Mutex<Vec<Event>>,
}

/// A shared, thread-safe recording of one request's execution. Clones
/// share the same buffer. Create with [`Trace::new`], activate with
/// [`install`], export with [`Trace::to_chrome_json`].
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("events", &self.inner.events.lock().unwrap().len())
            .finish()
    }
}

impl Trace {
    /// A fresh, empty trace whose clock starts now.
    pub fn new() -> Self {
        Trace {
            inner: Arc::new(TraceInner {
                start: Instant::now(),
                next_id: AtomicU64::new(1),
                next_tid: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn fresh_tid(&self) -> u64 {
        self.inner.next_tid.fetch_add(1, Ordering::Relaxed)
    }

    fn micros_since_start(&self) -> u64 {
        self.inner.start.elapsed().as_micros() as u64
    }

    fn record(&self, event: Event) {
        self.inner.events.lock().unwrap().push(event);
    }

    /// A copy of every recorded event, in completion order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().unwrap().clone()
    }

    /// Number of closed spans recorded so far (instants excluded). The
    /// disabled-overhead bench multiplies this by the measured noop cost.
    pub fn span_count(&self) -> usize {
        self.inner
            .events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.kind == EventKind::Complete)
            .count()
    }

    /// Export in Chrome trace-event JSON array format: load the string in
    /// `chrome://tracing` or Perfetto. Spans are `"X"` complete events
    /// (`ts`/`dur` in µs), instants are `"i"` markers; span ids and parent
    /// links ride along in `args` so tools that ignore them still render
    /// per-`tid` nesting by timestamp containment.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\"traceEvents\": [");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            let mut args = format!("\"id\": {}, \"parent\": {}", e.id, e.parent);
            for (k, v) in &e.args {
                args.push_str(&format!(", \"{k}\": {v}"));
            }
            if let Some(d) = &e.detail {
                args.push_str(&format!(", \"detail\": \"{}\"", escape_json(d)));
            }
            match e.kind {
                EventKind::Complete => out.push_str(&format!(
                    "{{\"name\": \"{}\", \"cat\": \"certa\", \"ph\": \"X\", \"ts\": {}, \
                     \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{{args}}}}}",
                    escape_json(&e.name),
                    e.ts_us,
                    e.dur_us,
                    e.tid,
                )),
                EventKind::Instant => out.push_str(&format!(
                    "{{\"name\": \"{}\", \"cat\": \"certa\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{{args}}}}}",
                    escape_json(&e.name),
                    e.ts_us,
                    e.tid,
                )),
            }
        }
        out.push_str("], \"displayTimeUnit\": \"ms\"}");
        out
    }

    /// A canonical, timing-free rendering of the span tree: each node is
    /// `name[detail]{args}(sorted child signatures)`. Timestamps,
    /// durations, thread lanes and sibling completion order are all
    /// erased, so two runs of the same work at different worker counts
    /// produce byte-identical signatures — the invariant the morsel sweep
    /// property test pins.
    pub fn structure_signature(&self) -> String {
        let events = self.events();
        let mut children: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            children.entry(e.parent).or_default().push(i);
        }
        fn sig(
            idx: usize,
            events: &[Event],
            children: &std::collections::BTreeMap<u64, Vec<usize>>,
        ) -> String {
            let e = &events[idx];
            let mut s = e.name.to_string();
            if let Some(d) = &e.detail {
                s.push_str(&format!("[{d}]"));
            }
            let mut args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
            args.sort();
            if !args.is_empty() {
                s.push_str(&format!("{{{}}}", args.join(",")));
            }
            let mut kids: Vec<String> = children
                .get(&e.id)
                .map(|c| c.iter().map(|&i| sig(i, events, children)).collect())
                .unwrap_or_default();
            kids.sort();
            if !kids.is_empty() {
                s.push_str(&format!("({})", kids.join(";")));
            }
            s
        }
        let mut roots: Vec<String> = children
            .get(&0)
            .map(|c| c.iter().map(|&i| sig(i, &events, &children)).collect())
            .unwrap_or_default();
        roots.sort();
        roots.join(";")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    start_us: u64,
    args: Vec<(&'static str, u64)>,
    detail: Option<String>,
}

struct ThreadCtx {
    trace: Trace,
    tid: u64,
    /// Parent id for spans opened at this thread's top level: 0 on the
    /// installing thread, the capturing span's id on attached workers.
    base_parent: u64,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Make `trace` the ambient trace for this thread (pass `None` to disable
/// tracing inside an enclosing traced region). Returns a guard restoring
/// the previous state on drop; nests like `governor::install`.
#[must_use = "dropping the guard immediately uninstalls the trace"]
pub fn install(trace: Option<Trace>) -> InstallGuard {
    let ctx = trace.map(|t| {
        let tid = t.fresh_tid();
        ThreadCtx {
            trace: t,
            tid,
            base_parent: 0,
            stack: Vec::new(),
        }
    });
    let previous = CURRENT.with(|c| c.replace(ctx));
    InstallGuard { previous }
}

/// Restores the previously installed trace (or none) when dropped.
pub struct InstallGuard {
    previous: Option<ThreadCtx>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.previous.take();
        });
    }
}

/// The ambient trace of this thread, if any.
pub fn current_trace() -> Option<Trace> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.trace.clone()))
}

/// A capture of "where execution is right now": the ambient trace and the
/// innermost open span. Pools take one before spawning workers and hand
/// each worker a reference to [`attach`].
#[derive(Clone, Debug)]
pub struct SpanContext {
    trace: Trace,
    parent: u64,
}

/// Capture the ambient trace + current span for crossing a thread spawn.
/// `None` when tracing is disabled — workers then attach nothing.
pub fn context() -> Option<SpanContext> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|ctx| SpanContext {
            trace: ctx.trace.clone(),
            parent: ctx.stack.last().map(|s| s.id).unwrap_or(ctx.base_parent),
        })
    })
}

/// Adopt a captured [`SpanContext`] on a worker thread: the worker gets a
/// fresh Chrome `tid` and its top-level spans are parented under the span
/// that was open at capture time. Returns a guard restoring the previous
/// (usually empty) state on drop.
#[must_use = "dropping the guard immediately detaches the worker"]
pub fn attach(ctx: Option<&SpanContext>) -> AttachGuard {
    let new = ctx.map(|sc| {
        let tid = sc.trace.fresh_tid();
        ThreadCtx {
            trace: sc.trace.clone(),
            tid,
            base_parent: sc.parent,
            stack: Vec::new(),
        }
    });
    let previous = CURRENT.with(|c| c.replace(new));
    AttachGuard { previous }
}

/// Restores the worker's previous trace state when dropped.
pub struct AttachGuard {
    previous: Option<ThreadCtx>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.previous.take();
        });
    }
}

/// Open a span. When no trace is ambient this is the noop path: one TLS
/// read, no allocation, no clock read. The span closes (and records its
/// event) when the returned guard drops.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    CURRENT.with(|c| {
        let mut borrow = c.borrow_mut();
        match borrow.as_mut() {
            None => SpanGuard { id: 0 },
            Some(ctx) => {
                let id = ctx.trace.fresh_id();
                let parent = ctx.stack.last().map(|s| s.id).unwrap_or(ctx.base_parent);
                let start_us = ctx.trace.micros_since_start();
                ctx.stack.push(OpenSpan {
                    id,
                    parent,
                    name: Cow::Borrowed(name),
                    start_us,
                    args: Vec::new(),
                    detail: None,
                });
                SpanGuard { id }
            }
        }
    })
}

/// Guard for an open span; recording happens on drop. `id == 0` marks the
/// noop (no ambient trace) case.
pub struct SpanGuard {
    id: u64,
}

impl SpanGuard {
    /// Whether this span actually records (false on the noop path).
    pub fn is_recording(&self) -> bool {
        self.id != 0
    }

    /// The span's id within its [`Trace`] (0 on the noop path). Ids are
    /// allocated when spans open, so on a single thread they increase in
    /// call-tree pre-order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Accumulate a numeric argument onto this span (repeat keys add).
    pub fn add(&self, key: &'static str, value: u64) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                if let Some(open) = ctx.stack.iter_mut().rev().find(|s| s.id == self.id) {
                    match open.args.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, v)) => *v += value,
                        None => open.args.push((key, value)),
                    }
                }
            }
        });
    }

    /// Attach a free-form label (an operator's rendered form, a site
    /// name). Only evaluated/stored when recording — guard call sites
    /// with [`SpanGuard::is_recording`] if building the string is costly.
    pub fn detail(&self, detail: String) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                if let Some(open) = ctx.stack.iter_mut().rev().find(|s| s.id == self.id) {
                    open.detail = Some(detail);
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| {
            let mut borrow = c.borrow_mut();
            if let Some(ctx) = borrow.as_mut() {
                // Close this span and (defensively) anything opened inside
                // it that leaked past its guard — keeps the stack sane even
                // if an inner guard was forgotten across a panic boundary.
                while let Some(open) = ctx.stack.pop() {
                    let done = open.id == self.id;
                    let end_us = ctx.trace.micros_since_start();
                    let event = Event {
                        name: open.name,
                        id: open.id,
                        parent: open.parent,
                        tid: ctx.tid,
                        ts_us: open.start_us,
                        dur_us: end_us.saturating_sub(open.start_us),
                        kind: EventKind::Complete,
                        args: open.args,
                        detail: open.detail,
                    };
                    ctx.trace.record(event);
                    if done {
                        break;
                    }
                }
            }
        });
    }
}

/// Accumulate a numeric argument onto the innermost open span, if any.
/// The noop path is one TLS read and a branch.
pub fn span_add(key: &'static str, value: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            if let Some(open) = ctx.stack.last_mut() {
                match open.args.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => *v += value,
                    None => open.args.push((key, value)),
                }
            }
        }
    });
}

/// Record a point-in-time marker under the innermost open span.
pub fn instant(name: &'static str) {
    instant_inner(name, None);
}

/// Record a point-in-time marker with a free-form label (e.g. a fault
/// site). The label is only materialised when a trace is ambient.
pub fn instant_detail(name: &'static str, detail: &str) {
    instant_inner(name, Some(detail));
}

fn instant_inner(name: &'static str, detail: Option<&str>) {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        if let Some(ctx) = borrow.as_ref() {
            let id = ctx.trace.fresh_id();
            let parent = ctx.stack.last().map(|s| s.id).unwrap_or(ctx.base_parent);
            let ts_us = ctx.trace.micros_since_start();
            ctx.trace.record(Event {
                name: Cow::Borrowed(name),
                id,
                parent,
                tid: ctx.tid,
                ts_us,
                dur_us: 0,
                kind: EventKind::Instant,
                args: Vec::new(),
                detail: detail.map(str::to_owned),
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_without_install() {
        let g = span("nothing");
        assert!(!g.is_recording());
        g.add("rows", 1);
        drop(g);
        span_add("rows", 1);
        instant("marker");
        assert!(current_trace().is_none());
    }

    #[test]
    fn spans_nest_and_record() {
        let trace = Trace::new();
        {
            let _g = install(Some(trace.clone()));
            let outer = span("outer");
            outer.add("rows", 2);
            {
                let inner = span("inner");
                inner.add("rows", 3);
                inner.add("rows", 4);
                instant("mark");
            }
            drop(outer);
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let mark = events.iter().find(|e| e.name == "mark").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(mark.parent, inner.id);
        assert_eq!(inner.args, vec![("rows", 7)]);
        assert_eq!(outer.parent, 0);
        assert!(trace.to_chrome_json().starts_with("{\"traceEvents\": ["));
    }

    #[test]
    fn workers_attach_under_capturing_span() {
        let trace = Trace::new();
        {
            let _g = install(Some(trace.clone()));
            let parent = span("pool");
            let ctx = context().expect("trace ambient");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _att = attach(Some(&ctx));
                        let _s = span("worker-item");
                    });
                }
            });
            drop(parent);
        }
        let events = trace.events();
        let pool = events.iter().find(|e| e.name == "pool").unwrap();
        let items: Vec<_> = events.iter().filter(|e| e.name == "worker-item").collect();
        assert_eq!(items.len(), 2);
        for item in &items {
            assert_eq!(item.parent, pool.id);
            assert_ne!(item.tid, pool.tid);
        }
    }

    #[test]
    fn signature_ignores_timing_and_order() {
        let build = |flip: bool| {
            let trace = Trace::new();
            {
                let _g = install(Some(trace.clone()));
                let _root = span("root");
                let names = if flip { ["b", "a"] } else { ["a", "b"] };
                for n in names {
                    let s = span(if n == "a" { "a" } else { "b" });
                    s.add("rows", 1);
                }
            }
            trace.structure_signature()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn nested_install_restores() {
        let outer = Trace::new();
        let inner = Trace::new();
        let _g1 = install(Some(outer.clone()));
        {
            let _g2 = install(Some(inner.clone()));
            let _s = span("inner-only");
        }
        let _s = span("outer-only");
        drop(_s);
        assert_eq!(inner.events().len(), 1);
        assert!(outer.events().iter().any(|e| e.name == "outer-only"));
    }
}
