//! Abstract syntax for the supported SQL fragment.

use certa_data::Const;
use std::fmt;

/// A column reference, optionally qualified by a table name or alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// The qualifying table or alias, if any.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// An item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`: every column of every table in the `FROM` clause.
    Star,
    /// A single column.
    Column(ColumnRef),
}

/// A table reference in the `FROM` clause: a base table with an optional
/// alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// The base table name.
    pub table: String,
    /// The alias used to qualify columns, defaulting to the table name.
    pub alias: Option<String>,
}

impl TableRef {
    /// The effective name used for column qualification.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A scalar expression or predicate in a `WHERE` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlExpr {
    /// A column reference.
    Column(ColumnRef),
    /// A literal constant.
    Literal(Const),
    /// The `NULL` literal.
    Null,
    /// Equality comparison.
    Eq(Box<SqlExpr>, Box<SqlExpr>),
    /// Disequality comparison (`<>` / `!=`).
    Neq(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical conjunction.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical disjunction.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical negation.
    Not(Box<SqlExpr>),
    /// `expr IS NULL` (`negated` flips it to `IS NOT NULL`).
    IsNull {
        /// The tested expression.
        expr: Box<SqlExpr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// The probe expression.
        expr: Box<SqlExpr>,
        /// The subquery (must return a single column).
        subquery: Box<SelectStatement>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        subquery: Box<SelectStatement>,
        /// `true` for `NOT EXISTS`.
        negated: bool,
    },
}

/// A `SELECT` statement of the supported fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStatement {
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// The `FROM` clause.
    pub from: Vec<TableRef>,
    /// The optional `WHERE` clause.
    pub where_clause: Option<SqlExpr>,
}

impl SelectStatement {
    /// `true` iff the statement uses no subqueries anywhere.
    pub fn is_subquery_free(&self) -> bool {
        fn expr_free(e: &SqlExpr) -> bool {
            match e {
                SqlExpr::InSubquery { .. } | SqlExpr::Exists { .. } => false,
                SqlExpr::Eq(a, b) | SqlExpr::Neq(a, b) | SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
                    expr_free(a) && expr_free(b)
                }
                SqlExpr::Not(a) => expr_free(a),
                SqlExpr::IsNull { expr, .. } => expr_free(expr),
                SqlExpr::Column(_) | SqlExpr::Literal(_) | SqlExpr::Null => true,
            }
        }
        self.where_clause.as_ref().is_none_or(expr_free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str) -> SqlExpr {
        SqlExpr::Column(ColumnRef {
            table: None,
            column: name.to_string(),
        })
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "Orders".into(),
            alias: Some("O".into()),
        };
        assert_eq!(t.binding(), "O");
        let t = TableRef {
            table: "Orders".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "Orders");
    }

    #[test]
    fn subquery_detection() {
        let plain = SelectStatement {
            items: vec![SelectItem::Star],
            from: vec![TableRef {
                table: "R".into(),
                alias: None,
            }],
            where_clause: Some(SqlExpr::Eq(Box::new(col("a")), Box::new(col("b")))),
        };
        assert!(plain.is_subquery_free());
        let nested = SelectStatement {
            where_clause: Some(SqlExpr::Exists {
                subquery: Box::new(plain.clone()),
                negated: false,
            }),
            ..plain.clone()
        };
        assert!(!nested.is_subquery_free());
    }

    #[test]
    fn column_display() {
        let c = ColumnRef {
            table: Some("O".into()),
            column: "oid".into(),
        };
        assert_eq!(c.to_string(), "O.oid");
    }
}
