//! Three-valued SQL evaluation over incomplete databases.
//!
//! The evaluation follows SQL's semantics precisely, as analysed in §5 of
//! the survey:
//!
//! * a comparison involving `NULL` evaluates to **unknown**;
//! * `AND`, `OR`, `NOT` follow Kleene's truth tables (Figure 3);
//! * `x [NOT] IN (subquery)` uses the standard SQL rules: `IN` is true if
//!   some element matches, false if no element could match, and unknown if
//!   the only reason no element matches is a `NULL` comparison;
//! * `[NOT] EXISTS` is two-valued;
//! * the `WHERE` clause keeps exactly the rows whose condition is **true**
//!   — SQL's implicit assertion operator, the culprit of §5.2;
//! * duplicates are preserved (bag semantics).
//!
//! Evaluation is deliberately naïve (nested loops); the goal is semantic
//! fidelity, not query-engine performance — the performance experiments use
//! the relational-algebra engine instead.

use crate::ast::{ColumnRef, SelectItem, SelectStatement, SqlExpr, TableRef};
use crate::{Result, SqlError};
use certa_data::{BagRelation, Database, Tuple, Value};
use certa_logic::Truth3;

/// One scope of column bindings: for each table binding in a `FROM` clause,
/// the attribute names and the current row.
#[derive(Debug, Clone, Default)]
struct Scope {
    bindings: Vec<(String, Vec<String>, Tuple)>,
}

impl Scope {
    /// Resolve a column reference in this scope; `None` if absent, error if
    /// ambiguous.
    fn resolve(&self, col: &ColumnRef) -> Result<Option<Value>> {
        let mut found: Option<Value> = None;
        for (binding, attrs, tuple) in &self.bindings {
            if let Some(table) = &col.table {
                if table != binding {
                    continue;
                }
            }
            if let Some(pos) = attrs.iter().position(|a| a == &col.column) {
                if found.is_some() && col.table.is_none() {
                    return Err(SqlError::UnknownColumn(format!(
                        "{} (ambiguous)",
                        col.column
                    )));
                }
                found = Some(tuple[pos].clone());
                if col.table.is_some() {
                    break;
                }
            }
        }
        Ok(found)
    }
}

/// Execute a `SELECT` statement on a database, returning a bag of rows (SQL
/// preserves duplicates).
///
/// # Errors
///
/// Returns an error for unknown tables or columns.
pub fn execute(stmt: &SelectStatement, db: &Database) -> Result<BagRelation> {
    execute_in_scope(stmt, db, &Scope::default())
}

fn execute_in_scope(stmt: &SelectStatement, db: &Database, outer: &Scope) -> Result<BagRelation> {
    let tables = resolve_tables(stmt, db)?;
    let mut rows: Vec<Tuple> = Vec::new();
    let mut output_arity = None;
    product_rows(&tables, 0, &mut Vec::new(), &mut |bindings| {
        let mut scope = Scope {
            bindings: bindings.to_vec(),
        };
        // Inner bindings shadow outer ones; append the outer bindings after
        // so unqualified resolution prefers the inner scope.
        scope.bindings.extend(outer.bindings.iter().cloned());
        let keep = match &stmt.where_clause {
            None => Truth3::True,
            Some(cond) => eval_expr(cond, db, &scope)?,
        };
        if keep == Truth3::True {
            let row = project_row(stmt, bindings)?;
            output_arity = Some(row.arity());
            rows.push(row);
        }
        Ok(())
    })?;
    let arity = output_arity.unwrap_or_else(|| projected_arity(stmt, &tables));
    Ok(BagRelation::from_tuples(arity, rows))
}

type Binding = (String, Vec<String>, Tuple);

/// A resolved FROM entry: the table reference, its attribute names, and its
/// materialised rows.
type ResolvedTable = (TableRef, Vec<String>, Vec<Tuple>);

fn resolve_tables(stmt: &SelectStatement, db: &Database) -> Result<Vec<ResolvedTable>> {
    stmt.from
        .iter()
        .map(|tref| {
            let schema = db
                .schema()
                .relation(&tref.table)
                .map_err(|_| SqlError::UnknownTable(tref.table.clone()))?;
            let rel = db
                .relation(&tref.table)
                .map_err(|_| SqlError::UnknownTable(tref.table.clone()))?;
            Ok((
                tref.clone(),
                schema.attributes().to_vec(),
                rel.iter().cloned().collect(),
            ))
        })
        .collect()
}

fn product_rows(
    tables: &[(TableRef, Vec<String>, Vec<Tuple>)],
    index: usize,
    current: &mut Vec<Binding>,
    callback: &mut impl FnMut(&[Binding]) -> Result<()>,
) -> Result<()> {
    if index == tables.len() {
        return callback(current);
    }
    let (tref, attrs, tuples) = &tables[index];
    for t in tuples {
        current.push((tref.binding().to_string(), attrs.clone(), t.clone()));
        product_rows(tables, index + 1, current, callback)?;
        current.pop();
    }
    Ok(())
}

fn projected_arity(
    stmt: &SelectStatement,
    tables: &[(TableRef, Vec<String>, Vec<Tuple>)],
) -> usize {
    match stmt.items.as_slice() {
        [SelectItem::Star] => tables.iter().map(|(_, attrs, _)| attrs.len()).sum(),
        items => items.len(),
    }
}

fn project_row(stmt: &SelectStatement, bindings: &[Binding]) -> Result<Tuple> {
    match stmt.items.as_slice() {
        [SelectItem::Star] => Ok(Tuple::new(
            bindings
                .iter()
                .flat_map(|(_, _, t)| t.iter().cloned())
                .collect::<Vec<_>>(),
        )),
        items => {
            let scope = Scope {
                bindings: bindings.to_vec(),
            };
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                let SelectItem::Column(col) = item else {
                    return Err(SqlError::Unsupported(
                        "`*` mixed with named columns".to_string(),
                    ));
                };
                match scope.resolve(col)? {
                    Some(v) => values.push(v),
                    None => return Err(SqlError::UnknownColumn(col.to_string())),
                }
            }
            Ok(Tuple::new(values))
        }
    }
}

/// Evaluate a scalar term to a value (`None` encodes SQL's `NULL` literal).
fn eval_term(expr: &SqlExpr, scope: &Scope) -> Result<Option<Value>> {
    match expr {
        SqlExpr::Column(col) => match scope.resolve(col)? {
            Some(v) => Ok(Some(v)),
            None => Err(SqlError::UnknownColumn(col.to_string())),
        },
        SqlExpr::Literal(c) => Ok(Some(Value::Const(c.clone()))),
        SqlExpr::Null => Ok(None),
        other => Err(SqlError::Unsupported(format!(
            "expected a scalar term, found {other:?}"
        ))),
    }
}

/// SQL comparison of two optional values: any `NULL` (literal or stored
/// null) makes the comparison unknown.
fn compare(a: &Option<Value>, b: &Option<Value>, negated: bool) -> Truth3 {
    match (a, b) {
        (Some(Value::Const(x)), Some(Value::Const(y))) => Truth3::from_bool((x == y) != negated),
        _ => Truth3::Unknown,
    }
}

fn eval_expr(expr: &SqlExpr, db: &Database, scope: &Scope) -> Result<Truth3> {
    match expr {
        SqlExpr::Eq(a, b) => Ok(compare(&eval_term(a, scope)?, &eval_term(b, scope)?, false)),
        SqlExpr::Neq(a, b) => Ok(compare(&eval_term(a, scope)?, &eval_term(b, scope)?, true)),
        SqlExpr::And(a, b) => Ok(eval_expr(a, db, scope)?.and(eval_expr(b, db, scope)?)),
        SqlExpr::Or(a, b) => Ok(eval_expr(a, db, scope)?.or(eval_expr(b, db, scope)?)),
        SqlExpr::Not(inner) => Ok(eval_expr(inner, db, scope)?.not()),
        SqlExpr::IsNull { expr, negated } => {
            let value = eval_term(expr, scope)?;
            let is_null = match value {
                None => true,
                Some(v) => v.is_null(),
            };
            Ok(Truth3::from_bool(is_null != *negated))
        }
        SqlExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let probe = eval_term(expr, scope)?;
            let rows = execute_in_scope(subquery, db, scope)?;
            let mut acc = Truth3::False;
            for (row, _) in rows.iter() {
                if row.arity() != 1 {
                    return Err(SqlError::Unsupported(
                        "IN subquery must return a single column".to_string(),
                    ));
                }
                let element = Some(row[0].clone());
                acc = acc.or(compare(&probe, &element, false));
            }
            Ok(if *negated { acc.not() } else { acc })
        }
        SqlExpr::Exists { subquery, negated } => {
            let rows = execute_in_scope(subquery, db, scope)?;
            let exists = Truth3::from_bool(!rows.is_empty());
            Ok(if *negated { exists.not() } else { exists })
        }
        SqlExpr::Column(_) | SqlExpr::Literal(_) | SqlExpr::Null => Err(SqlError::Unsupported(
            "a scalar term cannot be used as a predicate".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use certa_data::{database_from_literal, tup};

    /// The Figure 1 database, optionally with the NULL of the introduction.
    fn shop(with_null: bool) -> Database {
        let second_payment = if with_null {
            tup!["c2", Value::null(0)]
        } else {
            tup!["c2", "o2"]
        };
        database_from_literal([
            (
                "Orders",
                vec!["oid", "title", "price"],
                vec![
                    tup!["o1", "Big Data", 30],
                    tup!["o2", "SQL", 35],
                    tup!["o3", "Logic", 50],
                ],
            ),
            (
                "Payments",
                vec!["cid", "oid"],
                vec![tup!["c1", "o1"], second_payment],
            ),
            (
                "Customers",
                vec!["cid", "name"],
                vec![tup!["c1", "John"], tup!["c2", "Mary"]],
            ),
        ])
    }

    const UNPAID: &str = "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)";
    const NO_PAID_ORDER: &str = "SELECT C.cid FROM Customers C WHERE NOT EXISTS \
         (SELECT * FROM Orders O, Payments P WHERE C.cid = P.cid AND P.oid = O.oid)";

    #[test]
    fn unpaid_orders_without_null() {
        let db = shop(false);
        let out = execute(&parse(UNPAID).unwrap(), &db).unwrap();
        assert_eq!(
            out.to_set(),
            certa_data::Relation::from_tuples(vec![tup!["o3"]])
        );
    }

    #[test]
    fn unpaid_orders_with_null_returns_empty_false_negative() {
        // §1: with the NULL, SQL returns the empty table — a false negative
        // is avoided only by accident; the real phenomenon is that o3 is
        // dropped even though it might be unpaid.
        let db = shop(true);
        let out = execute(&parse(UNPAID).unwrap(), &db).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn customers_without_paid_order_with_null_returns_false_positive() {
        // §1: with the NULL, SQL returns c2 even though c2 is not a certain
        // answer (a false positive).
        let db = shop(true);
        let out = execute(&parse(NO_PAID_ORDER).unwrap(), &db).unwrap();
        assert_eq!(
            out.to_set(),
            certa_data::Relation::from_tuples(vec![tup!["c2"]])
        );
        // Without the NULL the answer is empty.
        let out = execute(&parse(NO_PAID_ORDER).unwrap(), &shop(false)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn or_tautology_misses_certain_answer() {
        // §1: the certain answer is {c1, c2} but SQL returns only c1.
        let db = shop(true);
        let q = parse("SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'").unwrap();
        let out = execute(&q, &db).unwrap();
        assert_eq!(
            out.to_set(),
            certa_data::Relation::from_tuples(vec![tup!["c1"]])
        );
    }

    #[test]
    fn is_null_predicates() {
        let db = shop(true);
        let q = parse("SELECT cid FROM Payments WHERE oid IS NULL").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap().to_set(),
            certa_data::Relation::from_tuples(vec![tup!["c2"]])
        );
        let q = parse("SELECT cid FROM Payments WHERE oid IS NOT NULL").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap().to_set(),
            certa_data::Relation::from_tuples(vec![tup!["c1"]])
        );
    }

    #[test]
    fn joins_and_projection_with_star() {
        let db = shop(false);
        let q = parse("SELECT * FROM Orders O, Payments P WHERE O.oid = P.oid AND P.cid = 'c1'")
            .unwrap();
        let out = execute(&q, &db).unwrap();
        assert_eq!(out.total_len(), 1);
        assert_eq!(out.arity(), 5);
    }

    #[test]
    fn null_comparisons_are_unknown_not_false() {
        // WHERE oid = NULL never returns anything, and neither does its
        // negation — the hallmark of three-valued logic.
        let db = shop(true);
        for q in [
            "SELECT cid FROM Payments WHERE oid = NULL",
            "SELECT cid FROM Payments WHERE NOT (oid = NULL)",
        ] {
            assert!(execute(&parse(q).unwrap(), &db).unwrap().is_empty(), "{q}");
        }
    }

    #[test]
    fn in_subquery_unknown_semantics() {
        // 'o2' IN (SELECT oid FROM Payments) with Payments.oid ∈ {o1, ⊥}:
        // no match, but the null makes it unknown, so NOT IN is also not
        // true — both queries return nothing for o2.
        let db = shop(true);
        let q_in = parse("SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments)").unwrap();
        let in_rows = execute(&q_in, &db).unwrap().to_set();
        assert_eq!(in_rows, certa_data::Relation::from_tuples(vec![tup!["o1"]]));
        let q_not_in = parse(UNPAID).unwrap();
        assert!(execute(&q_not_in, &db).unwrap().is_empty());
    }

    #[test]
    fn duplicates_are_preserved() {
        let db = database_from_literal([("R", vec!["a", "b"], vec![tup![1, 10], tup![1, 20]])]);
        let q = parse("SELECT a FROM R").unwrap();
        let out = execute(&q, &db).unwrap();
        assert_eq!(out.multiplicity(&tup![1]), 2);
    }

    #[test]
    fn error_cases() {
        let db = shop(false);
        assert!(matches!(
            execute(&parse("SELECT x FROM Nope").unwrap(), &db),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&parse("SELECT nope FROM Orders").unwrap(), &db),
            Err(SqlError::UnknownColumn(_))
        ));
        // Ambiguous unqualified column across two tables.
        assert!(matches!(
            execute(
                &parse("SELECT title FROM Orders, Payments WHERE oid = 'o1'").unwrap(),
                &db
            ),
            Err(SqlError::UnknownColumn(_))
        ));
        // Multi-column IN subquery is rejected.
        assert!(matches!(
            execute(
                &parse("SELECT oid FROM Orders WHERE oid IN (SELECT * FROM Payments)").unwrap(),
                &db
            ),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn correlated_exists_sees_outer_scope() {
        let db = shop(false);
        let q = parse(
            "SELECT name FROM Customers C WHERE EXISTS \
             (SELECT * FROM Payments P WHERE P.cid = C.cid)",
        )
        .unwrap();
        let out = execute(&q, &db).unwrap();
        assert_eq!(out.total_len(), 2);
    }
}
