//! Tokenizer for the supported SQL fragment.

use crate::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A keyword or identifier (keywords are recognised case-insensitively
    /// by the parser; the original spelling is preserved here).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (single-quoted in the source).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `*`
    Star,
}

impl Token {
    /// `true` iff the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize an SQL string.
///
/// # Errors
///
/// Returns a [`SqlError::Lex`] on unterminated strings or unexpected
/// characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex(i, "expected `<>`".to_string()));
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex(i, "expected `!=`".to_string()));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(SqlError::Lex(i, "unterminated string literal".to_string()));
                }
                tokens.push(Token::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(char::is_ascii_digit)) =>
            {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let value = text
                    .parse::<i64>()
                    .map_err(|e| SqlError::Lex(start, format!("bad integer `{text}`: {e}")))?;
                tokens.push(Token::Int(value));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                tokens.push(Token::Ident(chars[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(SqlError::Lex(i, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_query() {
        let toks = tokenize("SELECT oid FROM Orders WHERE price = 30").unwrap();
        assert_eq!(toks.len(), 8);
        assert!(toks[0].is_keyword("select"));
        assert_eq!(toks[7], Token::Int(30));
    }

    #[test]
    fn tokenizes_strings_and_operators() {
        let toks = tokenize("a <> 'o2' AND b != 3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Neq,
                Token::Str("o2".into()),
                Token::Ident("AND".into()),
                Token::Ident("b".into()),
                Token::Neq,
                Token::Int(3),
            ]
        );
    }

    #[test]
    fn tokenizes_punctuation_and_qualified_names() {
        let toks = tokenize("SELECT C.cid, * FROM Customers C").unwrap();
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Comma));
        assert!(toks.contains(&Token::Star));
    }

    #[test]
    fn negative_numbers_and_errors() {
        assert_eq!(tokenize("-5").unwrap(), vec![Token::Int(-5)]);
        assert!(matches!(tokenize("'abc"), Err(SqlError::Lex(_, _))));
        assert!(matches!(tokenize("a < b"), Err(SqlError::Lex(_, _))));
        assert!(matches!(tokenize("a ! b"), Err(SqlError::Lex(_, _))));
        assert!(matches!(tokenize("a # b"), Err(SqlError::Lex(_, _))));
    }
}
