//! # certa-sql
//!
//! A small SQL front-end with a *faithful* reproduction of SQL's
//! three-valued-logic evaluation over databases with nulls, used to
//! reproduce the introduction of the PODS 2020 survey "Coping with
//! Incomplete Data: Recent Advances" (false positives and false negatives
//! of SQL with respect to certain answers) and the `FO↑SQL` analysis of
//! §5.2.
//!
//! The supported fragment is the "core SQL" of the survey: `SELECT` /
//! `FROM` / `WHERE` with equality and disequality comparisons, `AND`, `OR`,
//! `NOT`, `IS [NOT] NULL`, `[NOT] IN (subquery)` and `[NOT] EXISTS
//! (subquery)`, with correlated subqueries. Evaluation follows SQL's rules:
//! comparisons involving `NULL` evaluate to *unknown*, the connectives
//! follow Kleene's logic (Figure 3), and the `WHERE` clause keeps exactly
//! the rows whose condition evaluates to *true* — the assertion operator of
//! §5.2.
//!
//! * [`parse`] — lexer and recursive-descent parser for the fragment;
//! * [`execute`] — three-valued evaluation over a [`certa_data::Database`]
//!   under bag semantics (duplicates preserved, as in SQL);
//! * [`lower`] — lowering of the subquery-free core (plus uncorrelated
//!   `[NOT] IN`) to relational algebra, so SQL queries can be fed to the
//!   approximation schemes of `certa-certain`.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{SelectItem, SelectStatement, SqlExpr, TableRef};
pub use eval::execute;
pub use lower::{lower_to_algebra, lower_to_algebra_3vl, LoweredQuery};
pub use parser::parse;

/// Errors raised by the SQL front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error at the given character position.
    Lex(usize, String),
    /// Parse error with a human-readable message.
    Parse(String),
    /// An unknown table was referenced.
    UnknownTable(String),
    /// An unknown or ambiguous column was referenced.
    UnknownColumn(String),
    /// The statement falls outside the fragment a given operation supports.
    Unsupported(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(pos, msg) => write!(f, "lexical error at position {pos}: {msg}"),
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            SqlError::UnknownColumn(c) => write!(f, "unknown or ambiguous column `{c}`"),
            SqlError::Unsupported(msg) => write!(f, "unsupported SQL feature: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SqlError>;
