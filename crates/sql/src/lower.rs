//! Lowering of the subquery-free SQL core (plus uncorrelated `[NOT] IN`)
//! to relational algebra.
//!
//! This is the bridge that lets SQL queries flow into the approximation
//! schemes of `certa-certain`: parse with [`crate::parse`], lower with
//! [`lower_to_algebra`], then rewrite with `q_plus` / `q_question` and
//! evaluate with the algebra engine. The lowering is *syntactic* — it maps
//! SQL text to the algebra expression a textbook would give — so the
//! three-valued behaviour of SQL is **not** baked in: evaluating the lowered
//! expression naïvely corresponds to treating nulls as values, and it is the
//! job of the rewritings to restore correctness guarantees. Performance
//! shaping (selection pushdown, join ordering, column pruning) is likewise
//! *not* this module's job: the lowering emits the plain
//! `π(σ(R₁ × … × Rₙ))` shape and leaves the rest to the null-aware logical
//! optimizer in `certa_algebra::opt`, which every prepared path runs by
//! default.
//!
//! Supported: `SELECT` / `FROM` / `WHERE` with comparisons, `AND`, `OR`,
//! `IS [NOT] NULL`, and `[NOT] IN (subquery)` where the subquery is itself
//! lowerable and does not refer to the outer scope. `EXISTS` and general
//! `NOT` are rejected with [`SqlError::Unsupported`].
//!
//! A second entry point, [`lower_to_algebra_3vl`], produces an algebra
//! expression whose ordinary two-valued (syntactic) evaluation returns
//! **exactly** the rows SQL's three-valued evaluation keeps — the SQL
//! semantics is compiled *into* the expression with `const(·)` guards
//! instead of being restored by a later rewriting. This is the bridge the
//! differential test suite uses to check [`crate::eval::execute`] against
//! the relational-algebra engine, and it additionally supports general
//! `NOT` (via mutual truth/falsity lowering) and a faithful `NOT IN`.

use crate::ast::{ColumnRef, SelectItem, SelectStatement, SqlExpr};
use crate::{Result, SqlError};
use certa_algebra::{Condition, Operand, RaExpr};
use certa_data::Schema;

/// How `WHERE` predicates are translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Textbook (syntactic) lowering: nulls behave as ordinary values when
    /// the result is evaluated; the approximation schemes restore
    /// correctness afterwards.
    Syntactic,
    /// SQL-faithful lowering: the produced expression's syntactic
    /// evaluation equals SQL's three-valued evaluation (rows whose `WHERE`
    /// is *true*).
    Sql3vl,
}

/// The result of lowering: an algebra expression plus its output column
/// names (qualified as `binding.attribute`).
#[derive(Debug, Clone)]
pub struct LoweredQuery {
    /// The relational-algebra expression.
    pub expr: RaExpr,
    /// The output column names.
    pub columns: Vec<String>,
}

/// Lower a parsed `SELECT` statement to relational algebra (syntactic
/// lowering: the textbook expression, with nulls behaving as plain values
/// under evaluation).
///
/// # Errors
///
/// Returns [`SqlError::Unsupported`] for statements outside the lowerable
/// fragment and name-resolution errors for unknown tables or columns.
pub fn lower_to_algebra(stmt: &SelectStatement, schema: &Schema) -> Result<LoweredQuery> {
    lower_with_mode(stmt, schema, Mode::Syntactic)
}

/// Lower a parsed `SELECT` statement to a *SQL-faithful* relational-algebra
/// expression: evaluating the result under the engine's two-valued
/// syntactic semantics returns exactly the distinct rows SQL's three-valued
/// evaluation keeps (`WHERE` = **true**), on complete *and* incomplete
/// databases.
///
/// Comparisons are guarded with `const(·)` so that any marked null makes
/// them neither true nor false; `NOT` is lowered by propagating
/// truth/falsity through the Kleene connectives; `IN` requires a constant
/// witness on both sides; and `NOT IN` reproduces SQL's rules, including
/// the empty-subquery and null-element corner cases. The result is
/// set-valued — SQL's duplicate preservation is the one thing this lowering
/// does not model.
///
/// # Errors
///
/// As [`lower_to_algebra`].
pub fn lower_to_algebra_3vl(stmt: &SelectStatement, schema: &Schema) -> Result<LoweredQuery> {
    lower_with_mode(stmt, schema, Mode::Sql3vl)
}

fn lower_with_mode(stmt: &SelectStatement, schema: &Schema, mode: Mode) -> Result<LoweredQuery> {
    // Build the FROM product and the column environment.
    let mut columns: Vec<String> = Vec::new();
    let mut expr: Option<RaExpr> = None;
    for tref in &stmt.from {
        let rel_schema = schema
            .relation(&tref.table)
            .map_err(|_| SqlError::UnknownTable(tref.table.clone()))?;
        for attr in rel_schema.attributes() {
            columns.push(format!("{}.{}", tref.binding(), attr));
        }
        let scan = RaExpr::rel(&tref.table);
        expr = Some(match expr {
            None => scan,
            Some(acc) => acc.product(scan),
        });
    }
    let mut expr = expr.ok_or_else(|| SqlError::Parse("empty FROM clause".to_string()))?;

    // WHERE clause: split into plain conditions and [NOT] IN constraints.
    // The lowering stays deliberately textbook — one selection over the
    // FROM product — because the logical optimizer (`certa_algebra::opt`)
    // owns pushdown, join ordering and column pruning; the only shaping
    // done here is not emitting a vacuous σ_⊤ node when the WHERE clause
    // consists of membership constraints alone.
    if let Some(where_clause) = &stmt.where_clause {
        let (condition, membership) = lower_where(where_clause, &columns, schema, mode)?;
        if condition != Condition::True {
            expr = expr.select(condition);
        }
        for m in membership {
            expr = apply_membership(expr, &columns, m, mode)?;
        }
    }

    // Projection.
    let (expr, columns) = lower_projection(stmt, expr, &columns)?;
    Ok(LoweredQuery { expr, columns })
}

/// A `[NOT] IN` constraint extracted from the `WHERE` clause.
struct Membership {
    probe: usize,
    subquery: LoweredQuery,
    negated: bool,
}

fn lower_projection(
    stmt: &SelectStatement,
    expr: RaExpr,
    columns: &[String],
) -> Result<(RaExpr, Vec<String>)> {
    match stmt.items.as_slice() {
        [SelectItem::Star] => Ok((expr, columns.to_vec())),
        items => {
            let mut positions = Vec::with_capacity(items.len());
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                let SelectItem::Column(col) = item else {
                    return Err(SqlError::Unsupported(
                        "`*` mixed with named columns".to_string(),
                    ));
                };
                let pos = resolve_column(col, columns)?;
                positions.push(pos);
                names.push(columns[pos].clone());
            }
            Ok((expr.project(positions), names))
        }
    }
}

fn resolve_column(col: &ColumnRef, columns: &[String]) -> Result<usize> {
    let matches: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| match &col.table {
            Some(t) => c.as_str() == format!("{t}.{}", col.column),
            None => c.rsplit('.').next() == Some(col.column.as_str()),
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => Err(SqlError::UnknownColumn(col.to_string())),
        _ => Err(SqlError::UnknownColumn(format!("{col} (ambiguous)"))),
    }
}

fn lower_operand(expr: &SqlExpr, columns: &[String]) -> Result<Operand> {
    match expr {
        SqlExpr::Column(col) => Ok(Operand::Attr(resolve_column(col, columns)?)),
        SqlExpr::Literal(c) => Ok(Operand::Const(c.clone())),
        other => Err(SqlError::Unsupported(format!(
            "operand {other:?} cannot be lowered"
        ))),
    }
}

/// Lower a `WHERE` expression into a selection condition plus a list of
/// membership constraints. Only conjunctions may combine membership
/// constraints with other predicates (disjunctions of `IN` are rejected).
fn lower_where(
    expr: &SqlExpr,
    columns: &[String],
    schema: &Schema,
    mode: Mode,
) -> Result<(Condition, Vec<Membership>)> {
    match expr {
        SqlExpr::And(a, b) => {
            let (ca, mut ma) = lower_where(a, columns, schema, mode)?;
            let (cb, mb) = lower_where(b, columns, schema, mode)?;
            ma.extend(mb);
            Ok((ca.and(cb), ma))
        }
        SqlExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let SqlExpr::Column(col) = expr.as_ref() else {
                return Err(SqlError::Unsupported(
                    "IN probe must be a column".to_string(),
                ));
            };
            let probe = resolve_column(col, columns)?;
            let lowered = lower_with_mode(subquery, schema, mode)?;
            if lowered.columns.len() != 1 {
                return Err(SqlError::Unsupported(
                    "IN subquery must return a single column".to_string(),
                ));
            }
            Ok((
                Condition::True,
                vec![Membership {
                    probe,
                    subquery: lowered,
                    negated: *negated,
                }],
            ))
        }
        other => match mode {
            Mode::Syntactic => Ok((lower_plain_condition(other, columns)?, Vec::new())),
            Mode::Sql3vl => Ok((cond_3vl(other, columns, true)?, Vec::new())),
        },
    }
}

/// The condition capturing "SQL's three-valued evaluation of `expr` yields
/// **true**" (`want_true`), or "… yields **false**" (`!want_true`), under
/// the engine's two-valued syntactic [`Condition::eval`]. Truth and falsity
/// are lowered mutually so that `NOT` flips between them, following
/// Kleene's tables: a conjunction is false when either side is false, a
/// disjunction is false when both are.
fn cond_3vl(expr: &SqlExpr, columns: &[String], want_true: bool) -> Result<Condition> {
    match expr {
        SqlExpr::Eq(a, b) | SqlExpr::Neq(a, b) => {
            if matches!(a.as_ref(), SqlExpr::Null) || matches!(b.as_ref(), SqlExpr::Null) {
                // A comparison with the NULL literal is unknown: never
                // true and never false.
                return Ok(Condition::False);
            }
            let (x, y) = (lower_operand(a, columns)?, lower_operand(b, columns)?);
            // Truth of `=` and falsity of `<>` compare for equality;
            // truth of `<>` and falsity of `=` for disequality. Either way
            // both operands must be constants, or the comparison is unknown.
            let equality = matches!(expr, SqlExpr::Eq(..)) == want_true;
            let mut out = if equality {
                Condition::Eq(x.clone(), y.clone())
            } else {
                Condition::Neq(x.clone(), y.clone())
            };
            for op in [&x, &y] {
                if let Operand::Attr(i) = op {
                    out = out.and(Condition::IsConst(*i));
                }
            }
            Ok(out)
        }
        SqlExpr::And(a, b) => {
            let ca = cond_3vl(a, columns, want_true)?;
            let cb = cond_3vl(b, columns, want_true)?;
            Ok(if want_true { ca.and(cb) } else { ca.or(cb) })
        }
        SqlExpr::Or(a, b) => {
            let ca = cond_3vl(a, columns, want_true)?;
            let cb = cond_3vl(b, columns, want_true)?;
            Ok(if want_true { ca.or(cb) } else { ca.and(cb) })
        }
        SqlExpr::Not(inner) => cond_3vl(inner, columns, !want_true),
        SqlExpr::IsNull { expr, negated } => {
            let SqlExpr::Column(col) = expr.as_ref() else {
                return Err(SqlError::Unsupported(
                    "IS NULL applies to columns only".to_string(),
                ));
            };
            let pos = resolve_column(col, columns)?;
            // IS [NOT] NULL is two-valued, so falsity is plain complement.
            Ok(if *negated != want_true {
                Condition::IsNull(pos)
            } else {
                Condition::IsConst(pos)
            })
        }
        other => Err(SqlError::Unsupported(format!(
            "predicate {other:?} cannot be lowered to relational algebra"
        ))),
    }
}

/// Lower a predicate containing no subqueries into a selection condition.
fn lower_plain_condition(expr: &SqlExpr, columns: &[String]) -> Result<Condition> {
    match expr {
        SqlExpr::Eq(a, b) => Ok(Condition::Eq(
            lower_operand(a, columns)?,
            lower_operand(b, columns)?,
        )),
        SqlExpr::Neq(a, b) => Ok(Condition::Neq(
            lower_operand(a, columns)?,
            lower_operand(b, columns)?,
        )),
        SqlExpr::And(a, b) => {
            Ok(lower_plain_condition(a, columns)?.and(lower_plain_condition(b, columns)?))
        }
        SqlExpr::Or(a, b) => {
            Ok(lower_plain_condition(a, columns)?.or(lower_plain_condition(b, columns)?))
        }
        SqlExpr::IsNull { expr, negated } => {
            let SqlExpr::Column(col) = expr.as_ref() else {
                return Err(SqlError::Unsupported(
                    "IS NULL applies to columns only".to_string(),
                ));
            };
            let pos = resolve_column(col, columns)?;
            Ok(if *negated {
                Condition::IsConst(pos)
            } else {
                Condition::IsNull(pos)
            })
        }
        other => Err(SqlError::Unsupported(format!(
            "predicate {other:?} cannot be lowered to relational algebra"
        ))),
    }
}

/// Apply a membership constraint: `IN` becomes a semijoin (projection of a
/// join), `NOT IN` becomes a set difference on the probe column combined
/// back with a join — both expressed with the paper's core operators.
///
/// In [`Mode::Sql3vl`] the construction instead reproduces SQL's
/// three-valued rules exactly (see [`apply_membership_3vl`]).
fn apply_membership(expr: RaExpr, columns: &[String], m: Membership, mode: Mode) -> Result<RaExpr> {
    let width = columns.len();
    if mode == Mode::Sql3vl {
        return Ok(apply_membership_3vl(expr, width, m));
    }
    let sub = m.subquery.expr;
    if m.negated {
        // Keep rows whose probe column is NOT in the subquery: join the row
        // with the complement via difference on the probe column.
        // rows ⋉̸ sub  =  rows joined with (π_probe(rows) − sub).
        let anti = expr.clone().project(vec![m.probe]).difference(sub);
        Ok(expr
            .product(anti)
            .select(Condition::eq_attr(m.probe, width))
            .project((0..width).collect::<Vec<_>>()))
    } else {
        // Semijoin: keep rows whose probe column appears in the subquery.
        Ok(expr
            .product(sub)
            .select(Condition::eq_attr(m.probe, width))
            .project((0..width).collect::<Vec<_>>()))
    }
}

/// SQL-faithful `[NOT] IN`. Per the SQL rules, `x IN S` is *true* iff some
/// element of `S` compares true with `x` — which needs both `x` and the
/// element to be non-null constants — and `x NOT IN S` is *true* iff every
/// comparison is false: either `S` is empty (any `x` qualifies, even null),
/// or `x` is a constant, `S` contains no null, and no element equals `x`.
fn apply_membership_3vl(expr: RaExpr, width: usize, m: Membership) -> RaExpr {
    let keep: Vec<usize> = (0..width).collect();
    let sub = m.subquery.expr;
    if m.negated {
        // (a) Empty subquery: every row qualifies regardless of the probe.
        let empty_sub = expr
            .clone()
            .difference(expr.clone().product(sub.clone()).project(keep.clone()));
        // (b) Constant probe not among the subquery's elements. The
        //     difference is syntactic, but the anti side holds constants
        //     only, so no null of `sub` can cancel a row of it.
        let anti = expr
            .clone()
            .select(Condition::IsConst(m.probe))
            .project(vec![m.probe])
            .difference(sub.clone());
        let matched = expr
            .clone()
            .product(anti)
            .select(Condition::eq_attr(m.probe, width))
            .project(keep.clone());
        // …and only if the subquery has no null element, which would make
        // its comparison unknown and the whole NOT IN non-true.
        let null_element = expr.product(sub.select(Condition::IsNull(0))).project(keep);
        empty_sub.union(matched.difference(null_element))
    } else {
        // A constant witness on both sides of the comparison.
        let witness = Condition::eq_attr(m.probe, width)
            .and(Condition::IsConst(m.probe))
            .and(Condition::IsConst(width));
        expr.product(sub).select(witness).project(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use certa_algebra::eval;
    use certa_data::{database_from_literal, tup, Database, Relation, Value};

    fn shop() -> Database {
        database_from_literal([
            (
                "Orders",
                vec!["oid", "title", "price"],
                vec![
                    tup!["o1", "Big Data", 30],
                    tup!["o2", "SQL", 35],
                    tup!["o3", "Logic", 50],
                ],
            ),
            (
                "Payments",
                vec!["cid", "oid"],
                vec![tup!["c1", "o1"], tup!["c2", "o2"]],
            ),
        ])
    }

    #[test]
    fn lowers_select_project_join() {
        let db = shop();
        let stmt =
            parse("SELECT O.title FROM Orders O, Payments P WHERE O.oid = P.oid AND P.cid = 'c1'")
                .unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(lowered.columns, vec!["O.title"]);
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out, Relation::from_tuples(vec![tup!["Big Data"]]));
    }

    #[test]
    fn lowers_not_in_to_difference_pattern() {
        let db = shop();
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out, Relation::from_tuples(vec![tup!["o3"]]));
    }

    #[test]
    fn lowers_in_to_semijoin_pattern() {
        let db = shop();
        let stmt = parse("SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments)").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out, Relation::from_tuples(vec![tup!["o1"], tup!["o2"]]));
    }

    #[test]
    fn lowered_not_in_feeds_certain_answer_machinery() {
        // With a null in Payments, the naïve evaluation of the lowered query
        // differs from its certain answers — the pipeline the approximation
        // schemes operate on.
        let db = database_from_literal([
            (
                "Orders",
                vec!["oid", "title", "price"],
                vec![tup!["o1", "Big Data", 30], tup!["o3", "Logic", 50]],
            ),
            (
                "Payments",
                vec!["cid", "oid"],
                vec![tup!["c1", Value::null(0)]],
            ),
        ]);
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let naive = certa_algebra::naive_eval(&lowered.expr, &db).unwrap();
        assert_eq!(naive.len(), 2);
    }

    #[test]
    fn lowers_is_null_and_disjunction() {
        let db = database_from_literal([(
            "R",
            vec!["a", "b"],
            vec![tup![1, Value::null(0)], tup![2, 3]],
        )]);
        let stmt = parse("SELECT a FROM R WHERE b IS NULL OR b = 3").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out.len(), 2);
        let stmt = parse("SELECT a FROM R WHERE b IS NOT NULL").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(
            eval(&lowered.expr, &db).unwrap(),
            Relation::from_tuples(vec![tup![2]])
        );
    }

    #[test]
    fn star_projection_keeps_all_columns() {
        let db = shop();
        let stmt = parse("SELECT * FROM Payments").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(lowered.columns.len(), 2);
        assert_eq!(eval(&lowered.expr, &db).unwrap().len(), 2);
    }

    #[test]
    fn rejects_exists_and_unknown_names() {
        let db = shop();
        let stmt =
            parse("SELECT cid FROM Customers WHERE EXISTS (SELECT * FROM Payments)").unwrap();
        assert!(matches!(
            lower_to_algebra(&stmt, db.schema()),
            Err(SqlError::UnknownTable(_)) | Err(SqlError::Unsupported(_))
        ));
        let stmt = parse("SELECT nope FROM Orders").unwrap();
        assert!(matches!(
            lower_to_algebra(&stmt, db.schema()),
            Err(SqlError::UnknownColumn(_))
        ));
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT * FROM Payments)").unwrap();
        assert!(matches!(
            lower_to_algebra(&stmt, db.schema()),
            Err(SqlError::Unsupported(_))
        ));
    }

    /// Assert the 3VL lowering agrees with the direct evaluator on a query.
    fn check_3vl(db: &Database, sql: &str) {
        let stmt = parse(sql).unwrap();
        let direct = crate::eval::execute(&stmt, db).unwrap().to_set();
        let lowered = lower_to_algebra_3vl(&stmt, db.schema()).unwrap();
        let algebra = eval(&lowered.expr, db).unwrap();
        assert_eq!(algebra, direct, "{sql}");
    }

    #[test]
    fn faithful_lowering_reproduces_sql_false_negatives() {
        // §1: with the NULL, SQL's NOT IN returns the empty table; the
        // syntactic lowering would return o1 and o3.
        let db = database_from_literal([
            (
                "Orders",
                vec!["oid", "title", "price"],
                vec![tup!["o1", "Big Data", 30], tup!["o3", "Logic", 50]],
            ),
            (
                "Payments",
                vec!["cid", "oid"],
                vec![tup!["c1", Value::null(0)]],
            ),
        ]);
        let sql = "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)";
        check_3vl(&db, sql);
        let stmt = parse(sql).unwrap();
        let faithful = lower_to_algebra_3vl(&stmt, db.schema()).unwrap();
        assert!(eval(&faithful.expr, &db).unwrap().is_empty());
        let syntactic = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(eval(&syntactic.expr, &db).unwrap().len(), 2);
    }

    #[test]
    fn faithful_lowering_tautology_and_negation() {
        let db = database_from_literal([(
            "Payments",
            vec!["cid", "oid"],
            vec![tup!["c1", "o1"], tup!["c2", Value::null(0)]],
        )]);
        // §1's OR-tautology: SQL keeps only c1; so must the lowering.
        check_3vl(
            &db,
            "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'",
        );
        // General NOT (rejected by the syntactic lowering) and NULL-literal
        // comparisons, both three-valued.
        check_3vl(&db, "SELECT cid FROM Payments WHERE NOT (oid = 'o1')");
        check_3vl(&db, "SELECT cid FROM Payments WHERE NOT (oid = NULL)");
        check_3vl(
            &db,
            "SELECT cid FROM Payments WHERE NOT (oid <> 'o1' AND cid = 'c2')",
        );
        check_3vl(&db, "SELECT cid FROM Payments WHERE oid IS NULL");
        assert!(matches!(
            lower_to_algebra(
                &parse("SELECT cid FROM Payments WHERE NOT (oid = 'o1')").unwrap(),
                db.schema()
            ),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn faithful_not_in_corner_cases() {
        // Empty subquery: NOT IN is true even for a null probe.
        let db = database_from_literal([
            ("R", vec!["a"], vec![tup![1], tup![Value::null(0)]]),
            ("S", vec!["a"], vec![]),
        ]);
        check_3vl(&db, "SELECT a FROM R WHERE a NOT IN (SELECT a FROM S)");
        let stmt = parse("SELECT a FROM R WHERE a NOT IN (SELECT a FROM S)").unwrap();
        let lowered = lower_to_algebra_3vl(&stmt, db.schema()).unwrap();
        assert_eq!(eval(&lowered.expr, &db).unwrap().len(), 2);
        // Null probe against a non-empty subquery: never kept.
        let db = database_from_literal([
            ("R", vec!["a"], vec![tup![1], tup![Value::null(0)]]),
            ("S", vec!["a"], vec![tup![2]]),
        ]);
        check_3vl(&db, "SELECT a FROM R WHERE a NOT IN (SELECT a FROM S)");
        check_3vl(&db, "SELECT a FROM R WHERE a IN (SELECT a FROM S)");
        // Same marked null on both sides: SQL still says unknown, while a
        // purely syntactic semijoin would match ⊥0 with ⊥0.
        let db = database_from_literal([
            ("R", vec!["a"], vec![tup![Value::null(0)]]),
            ("S", vec!["a"], vec![tup![Value::null(0)]]),
        ]);
        check_3vl(&db, "SELECT a FROM R WHERE a IN (SELECT a FROM S)");
        check_3vl(&db, "SELECT a FROM R WHERE a NOT IN (SELECT a FROM S)");
    }

    #[test]
    fn lowered_query_matches_sql_on_complete_data() {
        // On complete databases the lowered algebra and the SQL evaluator
        // agree (both are the textbook semantics there).
        let db = shop();
        for q in [
            "SELECT oid FROM Orders WHERE price = 30 OR price = 50",
            "SELECT O.oid FROM Orders O, Payments P WHERE O.oid = P.oid",
            "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)",
        ] {
            let stmt = parse(q).unwrap();
            let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
            let algebra_out = eval(&lowered.expr, &db).unwrap();
            let sql_out = crate::eval::execute(&stmt, &db).unwrap().to_set();
            assert_eq!(algebra_out, sql_out, "{q}");
        }
    }
}
