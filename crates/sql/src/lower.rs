//! Lowering of the subquery-free SQL core (plus uncorrelated `[NOT] IN`)
//! to relational algebra.
//!
//! This is the bridge that lets SQL queries flow into the approximation
//! schemes of `certa-certain`: parse with [`crate::parse`], lower with
//! [`lower_to_algebra`], then rewrite with `q_plus` / `q_question` and
//! evaluate with the algebra engine. The lowering is *syntactic* — it maps
//! SQL text to the algebra expression a textbook would give — so the
//! three-valued behaviour of SQL is **not** baked in: evaluating the lowered
//! expression naïvely corresponds to treating nulls as values, and it is the
//! job of the rewritings to restore correctness guarantees.
//!
//! Supported: `SELECT` / `FROM` / `WHERE` with comparisons, `AND`, `OR`,
//! `IS [NOT] NULL`, and `[NOT] IN (subquery)` where the subquery is itself
//! lowerable and does not refer to the outer scope. `EXISTS` and general
//! `NOT` are rejected with [`SqlError::Unsupported`].

use crate::ast::{ColumnRef, SelectItem, SelectStatement, SqlExpr};
use crate::{Result, SqlError};
use certa_algebra::{Condition, Operand, RaExpr};
use certa_data::Schema;

/// The result of lowering: an algebra expression plus its output column
/// names (qualified as `binding.attribute`).
#[derive(Debug, Clone)]
pub struct LoweredQuery {
    /// The relational-algebra expression.
    pub expr: RaExpr,
    /// The output column names.
    pub columns: Vec<String>,
}

/// Lower a parsed `SELECT` statement to relational algebra.
///
/// # Errors
///
/// Returns [`SqlError::Unsupported`] for statements outside the lowerable
/// fragment and name-resolution errors for unknown tables or columns.
pub fn lower_to_algebra(stmt: &SelectStatement, schema: &Schema) -> Result<LoweredQuery> {
    // Build the FROM product and the column environment.
    let mut columns: Vec<String> = Vec::new();
    let mut expr: Option<RaExpr> = None;
    for tref in &stmt.from {
        let rel_schema = schema
            .relation(&tref.table)
            .map_err(|_| SqlError::UnknownTable(tref.table.clone()))?;
        for attr in rel_schema.attributes() {
            columns.push(format!("{}.{}", tref.binding(), attr));
        }
        let scan = RaExpr::rel(&tref.table);
        expr = Some(match expr {
            None => scan,
            Some(acc) => acc.product(scan),
        });
    }
    let mut expr = expr.ok_or_else(|| SqlError::Parse("empty FROM clause".to_string()))?;

    // WHERE clause: split into plain conditions and [NOT] IN constraints.
    if let Some(where_clause) = &stmt.where_clause {
        let (condition, membership) = lower_where(where_clause, &columns, schema)?;
        expr = expr.select(condition);
        for m in membership {
            expr = apply_membership(expr, &columns, m, schema)?;
        }
    }

    // Projection.
    let (expr, columns) = lower_projection(stmt, expr, &columns)?;
    Ok(LoweredQuery { expr, columns })
}

/// A `[NOT] IN` constraint extracted from the `WHERE` clause.
struct Membership {
    probe: usize,
    subquery: LoweredQuery,
    negated: bool,
}

fn lower_projection(
    stmt: &SelectStatement,
    expr: RaExpr,
    columns: &[String],
) -> Result<(RaExpr, Vec<String>)> {
    match stmt.items.as_slice() {
        [SelectItem::Star] => Ok((expr, columns.to_vec())),
        items => {
            let mut positions = Vec::with_capacity(items.len());
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                let SelectItem::Column(col) = item else {
                    return Err(SqlError::Unsupported(
                        "`*` mixed with named columns".to_string(),
                    ));
                };
                let pos = resolve_column(col, columns)?;
                positions.push(pos);
                names.push(columns[pos].clone());
            }
            Ok((expr.project(positions), names))
        }
    }
}

fn resolve_column(col: &ColumnRef, columns: &[String]) -> Result<usize> {
    let matches: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| match &col.table {
            Some(t) => c.as_str() == format!("{t}.{}", col.column),
            None => c.rsplit('.').next() == Some(col.column.as_str()),
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(*i),
        [] => Err(SqlError::UnknownColumn(col.to_string())),
        _ => Err(SqlError::UnknownColumn(format!("{col} (ambiguous)"))),
    }
}

fn lower_operand(expr: &SqlExpr, columns: &[String]) -> Result<Operand> {
    match expr {
        SqlExpr::Column(col) => Ok(Operand::Attr(resolve_column(col, columns)?)),
        SqlExpr::Literal(c) => Ok(Operand::Const(c.clone())),
        other => Err(SqlError::Unsupported(format!(
            "operand {other:?} cannot be lowered"
        ))),
    }
}

/// Lower a `WHERE` expression into a selection condition plus a list of
/// membership constraints. Only conjunctions may combine membership
/// constraints with other predicates (disjunctions of `IN` are rejected).
fn lower_where(
    expr: &SqlExpr,
    columns: &[String],
    schema: &Schema,
) -> Result<(Condition, Vec<Membership>)> {
    match expr {
        SqlExpr::And(a, b) => {
            let (ca, mut ma) = lower_where(a, columns, schema)?;
            let (cb, mb) = lower_where(b, columns, schema)?;
            ma.extend(mb);
            Ok((ca.and(cb), ma))
        }
        SqlExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let SqlExpr::Column(col) = expr.as_ref() else {
                return Err(SqlError::Unsupported(
                    "IN probe must be a column".to_string(),
                ));
            };
            let probe = resolve_column(col, columns)?;
            let lowered = lower_to_algebra(subquery, schema)?;
            if lowered.columns.len() != 1 {
                return Err(SqlError::Unsupported(
                    "IN subquery must return a single column".to_string(),
                ));
            }
            Ok((
                Condition::True,
                vec![Membership {
                    probe,
                    subquery: lowered,
                    negated: *negated,
                }],
            ))
        }
        other => Ok((lower_plain_condition(other, columns)?, Vec::new())),
    }
}

/// Lower a predicate containing no subqueries into a selection condition.
fn lower_plain_condition(expr: &SqlExpr, columns: &[String]) -> Result<Condition> {
    match expr {
        SqlExpr::Eq(a, b) => Ok(Condition::Eq(
            lower_operand(a, columns)?,
            lower_operand(b, columns)?,
        )),
        SqlExpr::Neq(a, b) => Ok(Condition::Neq(
            lower_operand(a, columns)?,
            lower_operand(b, columns)?,
        )),
        SqlExpr::And(a, b) => {
            Ok(lower_plain_condition(a, columns)?.and(lower_plain_condition(b, columns)?))
        }
        SqlExpr::Or(a, b) => {
            Ok(lower_plain_condition(a, columns)?.or(lower_plain_condition(b, columns)?))
        }
        SqlExpr::IsNull { expr, negated } => {
            let SqlExpr::Column(col) = expr.as_ref() else {
                return Err(SqlError::Unsupported(
                    "IS NULL applies to columns only".to_string(),
                ));
            };
            let pos = resolve_column(col, columns)?;
            Ok(if *negated {
                Condition::IsConst(pos)
            } else {
                Condition::IsNull(pos)
            })
        }
        other => Err(SqlError::Unsupported(format!(
            "predicate {other:?} cannot be lowered to relational algebra"
        ))),
    }
}

/// Apply a membership constraint: `IN` becomes a semijoin (projection of a
/// join), `NOT IN` becomes a set difference on the probe column combined
/// back with a join — both expressed with the paper's core operators.
fn apply_membership(
    expr: RaExpr,
    columns: &[String],
    m: Membership,
    _schema: &Schema,
) -> Result<RaExpr> {
    let width = columns.len();
    let sub = m.subquery.expr;
    if m.negated {
        // Keep rows whose probe column is NOT in the subquery: join the row
        // with the complement via difference on the probe column.
        // rows ⋉̸ sub  =  rows joined with (π_probe(rows) − sub).
        let anti = expr.clone().project(vec![m.probe]).difference(sub);
        Ok(expr
            .product(anti)
            .select(Condition::eq_attr(m.probe, width))
            .project((0..width).collect::<Vec<_>>()))
    } else {
        // Semijoin: keep rows whose probe column appears in the subquery.
        Ok(expr
            .product(sub)
            .select(Condition::eq_attr(m.probe, width))
            .project((0..width).collect::<Vec<_>>()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use certa_algebra::eval;
    use certa_data::{database_from_literal, tup, Database, Relation, Value};

    fn shop() -> Database {
        database_from_literal([
            (
                "Orders",
                vec!["oid", "title", "price"],
                vec![
                    tup!["o1", "Big Data", 30],
                    tup!["o2", "SQL", 35],
                    tup!["o3", "Logic", 50],
                ],
            ),
            (
                "Payments",
                vec!["cid", "oid"],
                vec![tup!["c1", "o1"], tup!["c2", "o2"]],
            ),
        ])
    }

    #[test]
    fn lowers_select_project_join() {
        let db = shop();
        let stmt =
            parse("SELECT O.title FROM Orders O, Payments P WHERE O.oid = P.oid AND P.cid = 'c1'")
                .unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(lowered.columns, vec!["O.title"]);
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out, Relation::from_tuples(vec![tup!["Big Data"]]));
    }

    #[test]
    fn lowers_not_in_to_difference_pattern() {
        let db = shop();
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out, Relation::from_tuples(vec![tup!["o3"]]));
    }

    #[test]
    fn lowers_in_to_semijoin_pattern() {
        let db = shop();
        let stmt = parse("SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments)").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out, Relation::from_tuples(vec![tup!["o1"], tup!["o2"]]));
    }

    #[test]
    fn lowered_not_in_feeds_certain_answer_machinery() {
        // With a null in Payments, the naïve evaluation of the lowered query
        // differs from its certain answers — the pipeline the approximation
        // schemes operate on.
        let db = database_from_literal([
            (
                "Orders",
                vec!["oid", "title", "price"],
                vec![tup!["o1", "Big Data", 30], tup!["o3", "Logic", 50]],
            ),
            (
                "Payments",
                vec!["cid", "oid"],
                vec![tup!["c1", Value::null(0)]],
            ),
        ]);
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let naive = certa_algebra::naive_eval(&lowered.expr, &db).unwrap();
        assert_eq!(naive.len(), 2);
    }

    #[test]
    fn lowers_is_null_and_disjunction() {
        let db = database_from_literal([(
            "R",
            vec!["a", "b"],
            vec![tup![1, Value::null(0)], tup![2, 3]],
        )]);
        let stmt = parse("SELECT a FROM R WHERE b IS NULL OR b = 3").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        let out = eval(&lowered.expr, &db).unwrap();
        assert_eq!(out.len(), 2);
        let stmt = parse("SELECT a FROM R WHERE b IS NOT NULL").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(
            eval(&lowered.expr, &db).unwrap(),
            Relation::from_tuples(vec![tup![2]])
        );
    }

    #[test]
    fn star_projection_keeps_all_columns() {
        let db = shop();
        let stmt = parse("SELECT * FROM Payments").unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        assert_eq!(lowered.columns.len(), 2);
        assert_eq!(eval(&lowered.expr, &db).unwrap().len(), 2);
    }

    #[test]
    fn rejects_exists_and_unknown_names() {
        let db = shop();
        let stmt =
            parse("SELECT cid FROM Customers WHERE EXISTS (SELECT * FROM Payments)").unwrap();
        assert!(matches!(
            lower_to_algebra(&stmt, db.schema()),
            Err(SqlError::UnknownTable(_)) | Err(SqlError::Unsupported(_))
        ));
        let stmt = parse("SELECT nope FROM Orders").unwrap();
        assert!(matches!(
            lower_to_algebra(&stmt, db.schema()),
            Err(SqlError::UnknownColumn(_))
        ));
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT * FROM Payments)").unwrap();
        assert!(matches!(
            lower_to_algebra(&stmt, db.schema()),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn lowered_query_matches_sql_on_complete_data() {
        // On complete databases the lowered algebra and the SQL evaluator
        // agree (both are the textbook semantics there).
        let db = shop();
        for q in [
            "SELECT oid FROM Orders WHERE price = 30 OR price = 50",
            "SELECT O.oid FROM Orders O, Payments P WHERE O.oid = P.oid",
            "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)",
        ] {
            let stmt = parse(q).unwrap();
            let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
            let algebra_out = eval(&lowered.expr, &db).unwrap();
            let sql_out = crate::eval::execute(&stmt, &db).unwrap().to_set();
            assert_eq!(algebra_out, sql_out, "{q}");
        }
    }
}
