//! Recursive-descent parser for the supported SQL fragment.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! select    ::= SELECT items FROM tables [WHERE expr]
//! items     ::= '*' | item (',' item)*
//! item      ::= [ident '.'] ident
//! tables    ::= table (',' table)*
//! table     ::= ident [ident]            -- optional alias
//! expr      ::= and_expr (OR and_expr)*
//! and_expr  ::= not_expr (AND not_expr)*
//! not_expr  ::= NOT not_expr | primary
//! primary   ::= EXISTS '(' select ')'
//!             | '(' expr ')'
//!             | term IS [NOT] NULL
//!             | term [NOT] IN '(' select ')'
//!             | term ('=' | '<>') term
//! term      ::= [ident '.'] ident | integer | string | NULL
//! ```

use crate::ast::{ColumnRef, SelectItem, SelectStatement, SqlExpr, TableRef};
use crate::lexer::{tokenize, Token};
use crate::{Result, SqlError};
use certa_data::Const;

/// Parse an SQL `SELECT` statement.
///
/// # Errors
///
/// Returns a lexing or parsing error for input outside the fragment.
pub fn parse(input: &str) -> Result<SelectStatement> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.select()?;
    if parser.pos != parser.tokens.len() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing input at token {}",
            parser.pos
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.advance() {
            Some(t) if t.is_keyword(kw) => Ok(()),
            other => Err(SqlError::Parse(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect(&mut self, token: &Token) -> Result<()> {
        match self.advance() {
            Some(t) if &t == token => Ok(()),
            other => Err(SqlError::Parse(format!(
                "expected {token:?}, found {other:?}"
            ))),
        }
    }

    fn keyword_ahead(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword("SELECT")?;
        let items = self.items()?;
        self.expect_keyword("FROM")?;
        let from = self.tables()?;
        let where_clause = if self.keyword_ahead("WHERE") {
            self.advance();
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectStatement {
            items,
            from,
            where_clause,
        })
    }

    fn items(&mut self) -> Result<Vec<SelectItem>> {
        if self.peek() == Some(&Token::Star) {
            self.advance();
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![SelectItem::Column(self.column_ref()?)];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            items.push(SelectItem::Column(self.column_ref()?));
        }
        Ok(items)
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.advance();
            let column = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn tables(&mut self) -> Result<Vec<TableRef>> {
        let mut tables = vec![self.table_ref()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            tables.push(self.table_ref()?);
        }
        Ok(tables)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        // An alias is a bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["WHERE", "AND", "OR", "ORDER", "GROUP"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw)) =>
            {
                Some(self.ident()?)
            }
            _ => None,
        };
        Ok(TableRef { table, alias })
    }

    fn expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.keyword_ahead("OR") {
            self.advance();
            let right = self.and_expr()?;
            left = SqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.keyword_ahead("AND") {
            self.advance();
            let right = self.not_expr()?;
            left = SqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.keyword_ahead("NOT") {
            // Could be NOT EXISTS or a general negation.
            self.advance();
            if self.keyword_ahead("EXISTS") {
                self.advance();
                let subquery = self.parenthesised_select()?;
                return Ok(SqlExpr::Exists {
                    subquery: Box::new(subquery),
                    negated: true,
                });
            }
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        if self.keyword_ahead("EXISTS") {
            self.advance();
            let subquery = self.parenthesised_select()?;
            return Ok(SqlExpr::Exists {
                subquery: Box::new(subquery),
                negated: false,
            });
        }
        if self.peek() == Some(&Token::LParen) {
            self.advance();
            let inner = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let left = self.term()?;
        // IS [NOT] NULL
        if self.keyword_ahead("IS") {
            self.advance();
            let negated = if self.keyword_ahead("NOT") {
                self.advance();
                true
            } else {
                false
            };
            self.expect_keyword("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN (subquery)
        let mut negated_in = false;
        if self.keyword_ahead("NOT") {
            self.advance();
            negated_in = true;
            self.expect_keyword("IN")?;
            let subquery = self.parenthesised_select()?;
            return Ok(SqlExpr::InSubquery {
                expr: Box::new(left),
                subquery: Box::new(subquery),
                negated: negated_in,
            });
        }
        if self.keyword_ahead("IN") {
            self.advance();
            let subquery = self.parenthesised_select()?;
            return Ok(SqlExpr::InSubquery {
                expr: Box::new(left),
                subquery: Box::new(subquery),
                negated: negated_in,
            });
        }
        // Comparison.
        match self.advance() {
            Some(Token::Eq) => Ok(SqlExpr::Eq(Box::new(left), Box::new(self.term()?))),
            Some(Token::Neq) => Ok(SqlExpr::Neq(Box::new(left), Box::new(self.term()?))),
            other => Err(SqlError::Parse(format!(
                "expected comparison operator, found {other:?}"
            ))),
        }
    }

    fn parenthesised_select(&mut self) -> Result<SelectStatement> {
        self.expect(&Token::LParen)?;
        let stmt = self.select()?;
        self.expect(&Token::RParen)?;
        Ok(stmt)
    }

    fn term(&mut self) -> Result<SqlExpr> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(SqlExpr::Literal(Const::Int(i))),
            Some(Token::Str(s)) => Ok(SqlExpr::Literal(Const::str(s))),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Ok(SqlExpr::Null),
            Some(Token::Ident(first)) => {
                if self.peek() == Some(&Token::Dot) {
                    self.advance();
                    let column = self.ident()?;
                    Ok(SqlExpr::Column(ColumnRef {
                        table: Some(first),
                        column,
                    }))
                } else {
                    Ok(SqlExpr::Column(ColumnRef {
                        table: None,
                        column: first,
                    }))
                }
            }
            other => Err(SqlError::Parse(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let stmt = parse("SELECT oid FROM Orders").unwrap();
        assert_eq!(stmt.items.len(), 1);
        assert_eq!(stmt.from.len(), 1);
        assert!(stmt.where_clause.is_none());
        assert!(stmt.is_subquery_free());
    }

    #[test]
    fn parses_star_and_aliases() {
        let stmt = parse("SELECT * FROM Orders O, Payments P WHERE O.oid = P.oid").unwrap();
        assert_eq!(stmt.items, vec![SelectItem::Star]);
        assert_eq!(stmt.from[0].binding(), "O");
        assert_eq!(stmt.from[1].binding(), "P");
        assert!(matches!(stmt.where_clause, Some(SqlExpr::Eq(_, _))));
    }

    #[test]
    fn parses_not_in_subquery() {
        let stmt =
            parse("SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)").unwrap();
        match stmt.where_clause.unwrap() {
            SqlExpr::InSubquery {
                negated, subquery, ..
            } => {
                assert!(negated);
                assert_eq!(subquery.from[0].table, "Payments");
            }
            other => panic!("expected NOT IN, got {other:?}"),
        }
    }

    #[test]
    fn parses_not_exists_correlated() {
        let stmt = parse(
            "SELECT C.cid FROM Customers C WHERE NOT EXISTS \
             (SELECT * FROM Orders O, Payments P WHERE C.cid = P.cid AND P.oid = O.oid)",
        )
        .unwrap();
        match stmt.where_clause.unwrap() {
            SqlExpr::Exists { negated, subquery } => {
                assert!(negated);
                assert_eq!(subquery.from.len(), 2);
            }
            other => panic!("expected NOT EXISTS, got {other:?}"),
        }
    }

    #[test]
    fn parses_or_and_precedence() {
        let stmt = parse("SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'").unwrap();
        match stmt.where_clause.unwrap() {
            SqlExpr::Or(l, r) => {
                assert!(matches!(*l, SqlExpr::Eq(_, _)));
                assert!(matches!(*r, SqlExpr::Neq(_, _)));
            }
            other => panic!("expected OR, got {other:?}"),
        }
        // AND binds tighter than OR.
        let stmt = parse("SELECT a FROM R WHERE a = 1 OR a = 2 AND b = 3").unwrap();
        assert!(matches!(stmt.where_clause.unwrap(), SqlExpr::Or(_, _)));
    }

    #[test]
    fn parses_is_null_and_not() {
        let stmt = parse("SELECT a FROM R WHERE a IS NULL").unwrap();
        assert!(matches!(
            stmt.where_clause.unwrap(),
            SqlExpr::IsNull { negated: false, .. }
        ));
        let stmt = parse("SELECT a FROM R WHERE a IS NOT NULL").unwrap();
        assert!(matches!(
            stmt.where_clause.unwrap(),
            SqlExpr::IsNull { negated: true, .. }
        ));
        let stmt = parse("SELECT a FROM R WHERE NOT (a = 1)").unwrap();
        assert!(matches!(stmt.where_clause.unwrap(), SqlExpr::Not(_)));
    }

    #[test]
    fn parses_null_literal_comparison() {
        let stmt = parse("SELECT a FROM R WHERE a = NULL").unwrap();
        match stmt.where_clause.unwrap() {
            SqlExpr::Eq(_, r) => assert_eq!(*r, SqlExpr::Null),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT a FROM R WHERE").is_err());
        assert!(parse("SELECT a FROM R extra garbage here =").is_err());
        assert!(parse("UPDATE R SET a = 1").is_err());
        assert!(parse("SELECT a FROM R WHERE a").is_err());
    }

    #[test]
    fn in_subquery_without_not() {
        let stmt = parse("SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments)").unwrap();
        assert!(matches!(
            stmt.where_clause.unwrap(),
            SqlExpr::InSubquery { negated: false, .. }
        ));
    }
}
