//! # certa-workload
//!
//! Workload generators for the experiments of the PODS 2020 survey
//! reproduction:
//!
//! * [`shop`] — the orders/payments/customers database of Figure 1, with
//!   and without the NULL perturbation of the introduction, plus the three
//!   queries discussed there (as SQL text and as relational algebra);
//! * [`tpch`] — a synthetic TPC-H-like schema and data generator with a
//!   configurable scale factor and null-injection rate, together with a
//!   suite of relational-algebra queries exercising the algebraic shapes of
//!   the TPC-H workload (joins, anti-joins, unions, selections, division);
//!   this substitutes for the TPC Benchmark H data used by the experiments
//!   the survey reports (see DESIGN.md §1 for the substitution argument);
//! * [`random`] — random databases and random relational-algebra queries
//!   for property-based testing and the naïve-evaluation experiments;
//! * [`sqlgen`] — random SQL `SELECT` statements inside the fragment shared
//!   by the direct three-valued evaluator and the SQL-faithful lowering,
//!   for the cross-crate differential suite.

pub mod random;
pub mod shop;
pub mod sqlgen;
pub mod tpch;

pub use random::{random_database, random_query, RandomDbConfig, RandomQueryConfig};
pub use shop::{shop_database, ShopQueries};
pub use sqlgen::{random_sql, RandomSqlConfig};
pub use tpch::{TpchConfig, TpchGenerator, TpchQuery};
