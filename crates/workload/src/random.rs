//! Random databases and random relational-algebra queries.
//!
//! Used by the property-based tests and by experiment E2 (naïve evaluation
//! versus exact certain answers on randomly generated instances).

use certa_algebra::{Condition, RaExpr};
use certa_data::{Database, RelationSchema, Schema, Tuple, Value};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the random database generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDbConfig {
    /// Relation names with arities.
    pub relations: Vec<(String, usize)>,
    /// Number of tuples per relation.
    pub tuples_per_relation: usize,
    /// Constants are drawn from `0..domain_size`.
    pub domain_size: i64,
    /// Number of distinct nulls available for injection.
    pub null_count: u32,
    /// Probability that a position holds a null instead of a constant.
    pub null_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDbConfig {
    fn default() -> Self {
        RandomDbConfig {
            relations: vec![("R".to_string(), 2), ("S".to_string(), 1)],
            tuples_per_relation: 4,
            domain_size: 4,
            null_count: 2,
            null_rate: 0.2,
            seed: 0,
        }
    }
}

/// Generate a random database according to the configuration.
///
/// The same null identifier can occur several times (marked-null model).
pub fn random_database(config: &RandomDbConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_relations(config.relations.iter().map(|(name, arity)| {
        RelationSchema::new(
            name.clone(),
            (0..*arity).map(|i| format!("a{i}")).collect::<Vec<_>>(),
        )
    }))
    .expect("random schema is well-formed");
    let mut db = Database::new(schema);
    for (name, arity) in &config.relations {
        for _ in 0..config.tuples_per_relation {
            let tuple = Tuple::new((0..*arity).map(|_| {
                if config.null_count > 0 && rng.gen_bool(config.null_rate.clamp(0.0, 1.0)) {
                    Value::null(rng.gen_range(0..config.null_count))
                } else {
                    Value::int(rng.gen_range(0..config.domain_size))
                }
            }));
            db.insert(name, tuple)
                .expect("arity matches by construction");
        }
    }
    db
}

/// Configuration of the random query generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomQueryConfig {
    /// Maximum operator depth.
    pub max_depth: usize,
    /// Allow the difference operator (turning the query into full RA).
    pub allow_difference: bool,
    /// Allow disequality selections.
    pub allow_disequality: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomQueryConfig {
    fn default() -> Self {
        RandomQueryConfig {
            max_depth: 3,
            allow_difference: true,
            allow_disequality: true,
            seed: 0,
        }
    }
}

/// Generate a random well-formed query over the given schema.
///
/// The generator only produces queries in the paper's core fragment
/// (relations, σ, π, ×, ∪, −), with operand arities kept consistent.
pub fn random_query(schema: &Schema, config: &RandomQueryConfig) -> RaExpr {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let relations: Vec<(String, usize)> = schema
        .iter()
        .map(|r| (r.name().to_string(), r.arity()))
        .collect();
    gen_expr(&relations, config, &mut rng, config.max_depth).0
}

fn gen_expr(
    relations: &[(String, usize)],
    config: &RandomQueryConfig,
    rng: &mut StdRng,
    depth: usize,
) -> (RaExpr, usize) {
    if depth == 0 || rng.gen_bool(0.3) {
        let (name, arity) = relations[rng.gen_range(0..relations.len())].clone();
        return (RaExpr::rel(name), arity);
    }
    let choice = rng.gen_range(0..5);
    match choice {
        // Selection.
        0 => {
            let (inner, arity) = gen_expr(relations, config, rng, depth - 1);
            let attr = rng.gen_range(0..arity.max(1));
            let cond = if config.allow_disequality && rng.gen_bool(0.3) {
                Condition::neq_const(attr, rng.gen_range(0..4))
            } else if rng.gen_bool(0.5) && arity >= 2 {
                Condition::eq_attr(attr, rng.gen_range(0..arity))
            } else {
                Condition::eq_const(attr, rng.gen_range(0..4))
            };
            (inner.select(cond), arity)
        }
        // Projection.
        1 => {
            let (inner, arity) = gen_expr(relations, config, rng, depth - 1);
            let keep = rng.gen_range(1..=arity.max(1));
            let positions: Vec<usize> = (0..keep).map(|_| rng.gen_range(0..arity.max(1))).collect();
            let out_arity = positions.len();
            (inner.project(positions), out_arity)
        }
        // Product.
        2 => {
            let (l, la) = gen_expr(relations, config, rng, depth - 1);
            let (r, ra) = gen_expr(relations, config, rng, depth - 1);
            (l.product(r), la + ra)
        }
        // Union of two copies with matching arity: use the same subexpression
        // shape on both sides to guarantee equal arities.
        3 => {
            let (l, la) = gen_expr(relations, config, rng, depth - 1);
            let (r, ra) = gen_expr(relations, config, rng, depth - 1);
            if la == ra {
                (l.union(r), la)
            } else {
                // Align arities by projecting both to their first column.
                (l.project(vec![0]).union(r.project(vec![0])), 1)
            }
        }
        // Difference (or a fallback when not allowed).
        _ => {
            let (l, la) = gen_expr(relations, config, rng, depth - 1);
            let (r, ra) = gen_expr(relations, config, rng, depth - 1);
            if !config.allow_difference {
                return if la == ra {
                    (l.union(r), la)
                } else {
                    (l.project(vec![0]).union(r.project(vec![0])), 1)
                };
            }
            if la == ra {
                (l.difference(r), la)
            } else {
                (l.project(vec![0]).difference(r.project(vec![0])), 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_algebra::{classify, naive_eval, Fragment};

    #[test]
    fn random_database_is_deterministic_and_respects_config() {
        let cfg = RandomDbConfig::default();
        let a = random_database(&cfg);
        let b = random_database(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.schema().len(), 2);
        assert!(a.relation("R").unwrap().len() <= cfg.tuples_per_relation);
        // With null_rate = 0 the database is complete.
        let complete = random_database(&RandomDbConfig {
            null_rate: 0.0,
            ..RandomDbConfig::default()
        });
        assert!(complete.is_complete());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_database(&RandomDbConfig::default());
        let b = random_database(&RandomDbConfig {
            seed: 99,
            ..RandomDbConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn random_queries_are_well_formed() {
        let schema = random_database(&RandomDbConfig::default());
        for seed in 0..50 {
            let q = random_query(
                schema.schema(),
                &RandomQueryConfig {
                    seed,
                    ..RandomQueryConfig::default()
                },
            );
            q.validate(schema.schema())
                .unwrap_or_else(|e| panic!("seed {seed}: {q} invalid: {e}"));
            // And they evaluate without error.
            naive_eval(&q, &schema).unwrap();
        }
    }

    #[test]
    fn positive_only_generator_stays_in_positive_fragment() {
        let db = random_database(&RandomDbConfig::default());
        for seed in 0..30 {
            let q = random_query(
                db.schema(),
                &RandomQueryConfig {
                    allow_difference: false,
                    allow_disequality: false,
                    seed,
                    ..RandomQueryConfig::default()
                },
            );
            let fragment = classify(&q);
            assert!(
                fragment <= Fragment::PositiveRa,
                "seed {seed}: {q} classified as {fragment:?}"
            );
        }
    }
}
