//! The Figure 1 database of the survey and the queries of its introduction.

use certa_algebra::{Condition, RaExpr};
use certa_data::{database_from_literal, tup, Database, Value};

/// Build the orders/payments/customers database of Figure 1.
///
/// With `with_null = true`, the `oid` value of the second `Payments` tuple
/// is replaced by a null — the single change that makes SQL's answers
/// change drastically in the introduction.
pub fn shop_database(with_null: bool) -> Database {
    let second_payment = if with_null {
        tup!["c2", Value::null(0)]
    } else {
        tup!["c2", "o2"]
    };
    database_from_literal([
        (
            "Orders",
            vec!["oid", "title", "price"],
            vec![
                tup!["o1", "Big Data", 30],
                tup!["o2", "SQL", 35],
                tup!["o3", "Logic", 50],
            ],
        ),
        (
            "Payments",
            vec!["cid", "oid"],
            vec![tup!["c1", "o1"], second_payment],
        ),
        (
            "Customers",
            vec!["cid", "name"],
            vec![tup!["c1", "John"], tup!["c2", "Mary"]],
        ),
    ])
}

/// The three queries of the survey's introduction, in SQL and in relational
/// algebra.
pub struct ShopQueries;

impl ShopQueries {
    /// SQL text of the unpaid-orders query.
    pub const UNPAID_ORDERS_SQL: &'static str =
        "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)";

    /// SQL text of the customers-without-a-paid-order query.
    pub const NO_PAID_ORDER_SQL: &'static str = "SELECT C.cid FROM Customers C WHERE NOT EXISTS \
         (SELECT * FROM Orders O, Payments P WHERE C.cid = P.cid AND P.oid = O.oid)";

    /// SQL text of the OR-tautology query.
    pub const OR_TAUTOLOGY_SQL: &'static str =
        "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'";

    /// The unpaid-orders query as relational algebra:
    /// `π_oid(Orders) − π_oid(Payments)`.
    pub fn unpaid_orders() -> RaExpr {
        RaExpr::rel("Orders")
            .project(vec![0])
            .difference(RaExpr::rel("Payments").project(vec![1]))
    }

    /// The customers-without-a-paid-order query as relational algebra:
    /// `π_cid(Customers) − π_cid(σ_{P.oid = O.oid}(Payments × Orders))`.
    pub fn customers_without_paid_order() -> RaExpr {
        let paid_customers = RaExpr::rel("Payments")
            .product(RaExpr::rel("Orders"))
            .select(Condition::eq_attr(1, 2))
            .project(vec![0]);
        RaExpr::rel("Customers")
            .project(vec![0])
            .difference(paid_customers)
    }

    /// The OR-tautology query as relational algebra:
    /// `π_cid(σ_{oid = 'o2' ∨ oid ≠ 'o2'}(Payments))`.
    pub fn or_tautology() -> RaExpr {
        RaExpr::rel("Payments")
            .select(Condition::eq_const(1, "o2").or(Condition::neq_const(1, "o2")))
            .project(vec![0])
    }

    /// The `R − (S − T)` query of §5.1 (as SQL with nested `NOT IN`),
    /// together with the database on which SQL returns an almost certainly
    /// false answer.
    pub fn nested_not_in_example() -> (Database, &'static str, RaExpr) {
        let db = database_from_literal([
            ("R", vec!["A"], vec![tup![1]]),
            ("S", vec!["A"], vec![tup![1]]),
            ("T", vec!["A"], vec![tup![Value::null(0)]]),
        ]);
        let sql = "SELECT R.A FROM R WHERE R.A NOT IN \
                   (SELECT S.A FROM S WHERE S.A NOT IN (SELECT A FROM T))";
        let algebra = RaExpr::rel("R").difference(RaExpr::rel("S").difference(RaExpr::rel("T")));
        (db, sql, algebra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_algebra::eval;
    use certa_data::Relation;

    #[test]
    fn complete_database_answers_match_the_paper() {
        let db = shop_database(false);
        assert_eq!(
            eval(&ShopQueries::unpaid_orders(), &db).unwrap(),
            Relation::from_tuples(vec![tup!["o3"]])
        );
        assert!(eval(&ShopQueries::customers_without_paid_order(), &db)
            .unwrap()
            .is_empty());
        assert_eq!(eval(&ShopQueries::or_tautology(), &db).unwrap().len(), 2);
    }

    #[test]
    fn database_shapes() {
        let complete = shop_database(false);
        let with_null = shop_database(true);
        assert!(complete.is_complete());
        assert!(!with_null.is_complete());
        assert_eq!(with_null.nulls().len(), 1);
        assert_eq!(complete.total_tuples(), 7);
    }

    #[test]
    fn sql_and_algebra_versions_agree_on_complete_data() {
        let db = shop_database(false);
        let stmt = certa_sql::parse(ShopQueries::UNPAID_ORDERS_SQL).unwrap();
        let sql_out = certa_sql::execute(&stmt, &db).unwrap().to_set();
        let ra_out = eval(&ShopQueries::unpaid_orders(), &db).unwrap();
        assert_eq!(sql_out, ra_out);
        let stmt = certa_sql::parse(ShopQueries::OR_TAUTOLOGY_SQL).unwrap();
        let sql_out = certa_sql::execute(&stmt, &db).unwrap().to_set();
        let ra_out = eval(&ShopQueries::or_tautology(), &db).unwrap();
        assert_eq!(sql_out, ra_out);
    }

    #[test]
    fn nested_not_in_example_shapes() {
        let (db, sql, algebra) = ShopQueries::nested_not_in_example();
        assert_eq!(db.nulls().len(), 1);
        let stmt = certa_sql::parse(sql).unwrap();
        // SQL returns {1} on this database (the §5.1 example) ...
        let sql_out = certa_sql::execute(&stmt, &db).unwrap().to_set();
        assert_eq!(sql_out, Relation::from_tuples(vec![tup![1]]));
        // ... even though naive evaluation of the algebra version (treating
        // the null as a value) returns the empty relation.
        let naive = certa_algebra::naive_eval(&algebra, &db).unwrap();
        assert!(naive.is_empty());
    }
}
