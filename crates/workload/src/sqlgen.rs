//! Random SQL `SELECT` statements over a schema.
//!
//! Used by the cross-crate differential suite
//! (`tests/differential_sql_vs_algebra.rs`): the generated statements stay
//! inside the fragment that `certa-sql` can both evaluate directly (the
//! three-valued evaluator) and lower faithfully to relational algebra
//! (`lower_to_algebra_3vl`), so the two paths can be compared
//! tuple-for-tuple on null-heavy databases. Every column reference is
//! qualified with a generated alias, keeping resolution unambiguous even
//! when the same table appears twice in `FROM`.

use certa_data::Schema;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the random SQL generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomSqlConfig {
    /// Maximum number of tables in the `FROM` clause (at least 1).
    pub max_tables: usize,
    /// Maximum depth of the `WHERE` condition tree.
    pub max_cond_depth: usize,
    /// Constants in comparisons are drawn from `0..domain_size`.
    pub domain_size: i64,
    /// Allow an extra `[NOT] IN (SELECT …)` conjunct.
    pub allow_membership: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSqlConfig {
    fn default() -> Self {
        RandomSqlConfig {
            max_tables: 2,
            max_cond_depth: 3,
            domain_size: 4,
            allow_membership: true,
            seed: 0,
        }
    }
}

/// Generate a random `SELECT` statement (as SQL text) over the schema.
///
/// The statement parses with `certa_sql::parse` and stays inside the
/// fragment supported by both the direct three-valued evaluator and the
/// SQL-faithful lowering: qualified columns, `=`/`<>` comparisons (against
/// constants, columns, and occasionally the `NULL` literal), `AND`/`OR`/
/// `NOT`, `IS [NOT] NULL`, and — when enabled — one top-level uncorrelated
/// `[NOT] IN (SELECT …)` conjunct.
pub fn random_sql(schema: &Schema, config: &RandomSqlConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let rels: Vec<(&str, Vec<&str>)> = schema
        .iter()
        .map(|r| {
            (
                r.name(),
                r.attributes().iter().map(String::as_str).collect(),
            )
        })
        .collect();

    // FROM: one alias per entry; the same table may appear twice.
    let n_tables = rng.gen_range(1..=config.max_tables.max(1));
    let mut from_parts: Vec<String> = Vec::new();
    let mut columns: Vec<String> = Vec::new();
    for i in 0..n_tables {
        let (name, attrs) = &rels[rng.gen_range(0..rels.len())];
        let alias = format!("t{i}");
        for attr in attrs {
            columns.push(format!("{alias}.{attr}"));
        }
        from_parts.push(format!("{name} {alias}"));
    }

    // WHERE: a random condition tree, plus an optional membership conjunct.
    let mut conjuncts = vec![gen_condition(
        &mut rng,
        &columns,
        config.domain_size,
        config.max_cond_depth,
    )];
    if config.allow_membership && rng.gen_bool(0.5) {
        let probe = columns[rng.gen_range(0..columns.len())].clone();
        let (sub_table, sub_attrs) = &rels[rng.gen_range(0..rels.len())];
        let sub_attr = sub_attrs[rng.gen_range(0..sub_attrs.len())];
        let sub_cols = vec![format!("s0.{sub_attr}")];
        let sub_where = if rng.gen_bool(0.5) {
            format!(
                " WHERE {}",
                gen_condition(&mut rng, &sub_cols, config.domain_size, 1)
            )
        } else {
            String::new()
        };
        let op = if rng.gen_bool(0.5) { "NOT IN" } else { "IN" };
        conjuncts.push(format!(
            "{probe} {op} (SELECT s0.{sub_attr} FROM {sub_table} s0{sub_where})"
        ));
    }

    // SELECT: `*` or up to three (possibly repeated) qualified columns.
    let items = if rng.gen_bool(0.2) {
        "*".to_string()
    } else {
        let k = rng.gen_range(1..=columns.len().min(3));
        (0..k)
            .map(|_| columns[rng.gen_range(0..columns.len())].clone())
            .collect::<Vec<_>>()
            .join(", ")
    };

    format!(
        "SELECT {items} FROM {} WHERE {}",
        from_parts.join(", "),
        conjuncts.join(" AND ")
    )
}

fn gen_condition(rng: &mut StdRng, columns: &[String], domain: i64, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.4) {
        let col = &columns[rng.gen_range(0..columns.len())];
        return match rng.gen_range(0..12) {
            0..=2 => format!("{col} = {}", rng.gen_range(0..domain)),
            3..=5 => format!("{col} <> {}", rng.gen_range(0..domain)),
            6 | 7 => {
                let other = &columns[rng.gen_range(0..columns.len())];
                let op = if rng.gen_bool(0.5) { "=" } else { "<>" };
                format!("{col} {op} {other}")
            }
            8 => format!("{col} IS NULL"),
            9 => format!("{col} IS NOT NULL"),
            // Rare: comparison with the NULL literal (always unknown).
            _ => format!("{col} = NULL"),
        };
    }
    let a = gen_condition(rng, columns, domain, depth - 1);
    let b = gen_condition(rng, columns, domain, depth - 1);
    match rng.gen_range(0..4) {
        0 | 1 => format!("({a} AND {b})"),
        2 => format!("({a} OR {b})"),
        _ => format!("NOT ({a})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_database, RandomDbConfig};

    #[test]
    fn generated_sql_is_deterministic_and_varies_with_seed() {
        let db = random_database(&RandomDbConfig::default());
        let cfg = RandomSqlConfig::default();
        assert_eq!(random_sql(db.schema(), &cfg), random_sql(db.schema(), &cfg));
        let other = random_sql(
            db.schema(),
            &RandomSqlConfig {
                seed: 1,
                ..cfg.clone()
            },
        );
        assert_ne!(random_sql(db.schema(), &cfg), other);
    }

    #[test]
    fn generated_sql_mentions_schema_tables() {
        let db = random_database(&RandomDbConfig::default());
        for seed in 0..20 {
            let sql = random_sql(
                db.schema(),
                &RandomSqlConfig {
                    seed,
                    ..RandomSqlConfig::default()
                },
            );
            assert!(sql.starts_with("SELECT "), "{sql}");
            assert!(sql.contains(" FROM "), "{sql}");
            assert!(sql.contains(" WHERE "), "{sql}");
        }
    }
}
