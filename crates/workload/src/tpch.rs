//! A TPC-H-like synthetic workload with null injection.
//!
//! The feasibility study surveyed in §4.2 ran the `(Q+, Q?)` rewritings on
//! the TPC Benchmark H; its findings (overhead of a few percent for `Q+`,
//! infeasibility of the `(Qt, Qf)` scheme, recall degrading with the amount
//! of incompleteness) depend on the *algebraic shape* of the queries and on
//! the *null density*, not on the specific TPC-H data. This module
//! therefore generates a scaled-down synthetic database with the same
//! relational skeleton — customers, orders, line items, parts, suppliers,
//! nations — and a query suite exercising the same shapes: key/foreign-key
//! joins, anti-joins (`NOT IN`), unions, selections with disequalities, and
//! a division (universal) query.

use certa_algebra::{Condition, RaExpr};
use certa_data::{Database, RelationSchema, Schema, Tuple, Value};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the synthetic TPC-H-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchConfig {
    /// Number of customers; other table sizes scale from it.
    pub customers: usize,
    /// Orders per customer (on average).
    pub orders_per_customer: usize,
    /// Line items per order (on average).
    pub lineitems_per_order: usize,
    /// Number of parts.
    pub parts: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of nations.
    pub nations: usize,
    /// Probability that a nullable attribute is replaced by a fresh null.
    pub null_rate: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            customers: 30,
            orders_per_customer: 3,
            lineitems_per_order: 2,
            parts: 25,
            suppliers: 10,
            nations: 5,
            null_rate: 0.02,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// A configuration scaled so that the total number of tuples is roughly
    /// `target_tuples`, keeping the default ratios.
    pub fn scaled_to(target_tuples: usize, null_rate: f64, seed: u64) -> Self {
        // With the default ratios, customers + 3c + 6c + parts + suppliers +
        // nations ≈ 10c + fixed; solve for c.
        let customers = (target_tuples / 11).max(2);
        TpchConfig {
            customers,
            parts: (customers * 4 / 5).max(2),
            suppliers: (customers / 3).max(2),
            nations: 5,
            null_rate,
            seed,
            ..TpchConfig::default()
        }
    }
}

/// The generator: holds the configuration and produces databases and
/// queries.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    config: TpchConfig,
}

impl TpchGenerator {
    /// Create a generator from a configuration.
    pub fn new(config: TpchConfig) -> Self {
        TpchGenerator { config }
    }

    /// The schema of the synthetic workload.
    pub fn schema() -> Schema {
        Schema::from_relations([
            RelationSchema::new("Nation", ["nationkey", "name"]),
            RelationSchema::new("Customer", ["custkey", "name", "nationkey"]),
            RelationSchema::new("Orders", ["orderkey", "custkey", "totalprice"]),
            RelationSchema::new("Lineitem", ["orderkey", "partkey", "suppkey", "quantity"]),
            RelationSchema::new("Part", ["partkey", "name"]),
            RelationSchema::new("Supplier", ["suppkey", "name", "nationkey"]),
        ])
        .expect("workload schema is well-formed")
    }

    /// Generate the database. Nulls are injected into the *foreign-key and
    /// measure* attributes (customer nation, order customer, line-item
    /// supplier, order price), which is where missing values arise in
    /// practice and what drives the incompleteness experiments.
    pub fn generate(&self) -> Database {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut next_null: u32 = 0;
        let maybe_null = |value: Value, rng: &mut StdRng, next_null: &mut u32| -> Value {
            if rng.gen_bool(cfg.null_rate.clamp(0.0, 1.0)) {
                let id = *next_null;
                *next_null += 1;
                Value::Null(id)
            } else {
                value
            }
        };

        let mut db = Database::new(Self::schema());
        for n in 0..cfg.nations {
            db.insert(
                "Nation",
                Tuple::new(vec![Value::int(n as i64), Value::str(format!("nation{n}"))]),
            )
            .expect("nation arity");
        }
        for c in 0..cfg.customers {
            let nation = rng.gen_range(0..cfg.nations) as i64;
            let nation = maybe_null(Value::int(nation), &mut rng, &mut next_null);
            db.insert(
                "Customer",
                Tuple::new(vec![
                    Value::int(c as i64),
                    Value::str(format!("customer{c}")),
                    nation,
                ]),
            )
            .expect("customer arity");
        }
        for s in 0..cfg.suppliers {
            let nation = rng.gen_range(0..cfg.nations) as i64;
            let nation = maybe_null(Value::int(nation), &mut rng, &mut next_null);
            db.insert(
                "Supplier",
                Tuple::new(vec![
                    Value::int(s as i64),
                    Value::str(format!("supplier{s}")),
                    nation,
                ]),
            )
            .expect("supplier arity");
        }
        for p in 0..cfg.parts {
            db.insert(
                "Part",
                Tuple::new(vec![Value::int(p as i64), Value::str(format!("part{p}"))]),
            )
            .expect("part arity");
        }
        let mut orderkey = 0i64;
        for c in 0..cfg.customers {
            for _ in 0..cfg.orders_per_customer {
                let price = rng.gen_range(10..1000);
                let custkey = maybe_null(Value::int(c as i64), &mut rng, &mut next_null);
                let price = maybe_null(Value::int(price), &mut rng, &mut next_null);
                db.insert(
                    "Orders",
                    Tuple::new(vec![Value::int(orderkey), custkey, price]),
                )
                .expect("orders arity");
                for _ in 0..cfg.lineitems_per_order {
                    let part = rng.gen_range(0..cfg.parts) as i64;
                    let supp = rng.gen_range(0..cfg.suppliers) as i64;
                    let qty = rng.gen_range(1..50);
                    let supp = maybe_null(Value::int(supp), &mut rng, &mut next_null);
                    db.insert(
                        "Lineitem",
                        Tuple::new(vec![
                            Value::int(orderkey),
                            Value::int(part),
                            supp,
                            Value::int(qty),
                        ]),
                    )
                    .expect("lineitem arity");
                }
                orderkey += 1;
            }
        }
        db
    }

    /// The query suite, in the paper's spirit: each query is a shape that
    /// the `(Q+, Q?)` study exercises.
    pub fn queries() -> Vec<TpchQuery> {
        vec![
            TpchQuery {
                name: "W1_customer_orders_join",
                description: "orders joined with their customers from nation 0 (SPJ query)",
                expr: RaExpr::rel("Orders")
                    .join_on(RaExpr::rel("Customer"), &[(1, 0)], 3)
                    .select(Condition::eq_const(5, 0))
                    .project(vec![0, 4]),
            },
            TpchQuery {
                name: "W2_customers_without_orders",
                description: "customers with no order (anti-join / NOT IN shape)",
                expr: RaExpr::rel("Customer")
                    .project(vec![0])
                    .difference(RaExpr::rel("Orders").project(vec![1])),
            },
            TpchQuery {
                name: "W3_parts_never_ordered",
                description: "parts that appear in no line item (difference after projection)",
                expr: RaExpr::rel("Part")
                    .project(vec![0])
                    .difference(RaExpr::rel("Lineitem").project(vec![1])),
            },
            TpchQuery {
                name: "W4_cheap_or_expensive_orders",
                description: "orders with totalprice = 100 or ≠ 100 (the tautology shape of §1)",
                expr: RaExpr::rel("Orders")
                    .select(Condition::eq_const(2, 100).or(Condition::neq_const(2, 100)))
                    .project(vec![0]),
            },
            TpchQuery {
                name: "W5_union_of_keys",
                description: "customers with an order union customers from nation 0",
                expr: RaExpr::rel("Orders").project(vec![1]).union(
                    RaExpr::rel("Customer")
                        .select(Condition::eq_const(2, 0))
                        .project(vec![0]),
                ),
            },
            TpchQuery {
                name: "W6_suppliers_not_supplying_part0",
                description: "suppliers with no line item for part 0 (nested difference)",
                expr: RaExpr::rel("Supplier").project(vec![0]).difference(
                    RaExpr::rel("Lineitem")
                        .select(Condition::eq_const(1, 0))
                        .project(vec![2]),
                ),
            },
            TpchQuery {
                name: "W7_suppliers_for_all_ordered_parts",
                description: "suppliers supplying every ordered part (division, Pos∀G shape)",
                expr: RaExpr::rel("Lineitem")
                    .project(vec![2, 1])
                    .divide(RaExpr::rel("Lineitem").project(vec![1])),
            },
        ]
    }

    /// The queries supported by the Figure 2 translation schemes (everything
    /// except the division query).
    pub fn translatable_queries() -> Vec<TpchQuery> {
        Self::queries()
            .into_iter()
            .filter(|q| !matches!(q.expr, RaExpr::Divide(..)) && !q.name.starts_with("W7"))
            .collect()
    }
}

/// A named workload query.
#[derive(Debug, Clone)]
pub struct TpchQuery {
    /// Short identifier (used in bench output).
    pub name: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The query.
    pub expr: RaExpr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_algebra::{eval, naive_eval};

    #[test]
    fn generator_is_deterministic_and_scaled() {
        let g = TpchGenerator::new(TpchConfig::default());
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a, b);
        assert_eq!(a.relation("Customer").unwrap().len(), 30);
        assert_eq!(a.relation("Orders").unwrap().len(), 90);
        assert_eq!(a.relation("Lineitem").unwrap().len(), 180);
    }

    #[test]
    fn null_rate_controls_incompleteness() {
        let none = TpchGenerator::new(TpchConfig {
            null_rate: 0.0,
            ..TpchConfig::default()
        })
        .generate();
        assert!(none.is_complete());
        let lots = TpchGenerator::new(TpchConfig {
            null_rate: 0.5,
            ..TpchConfig::default()
        })
        .generate();
        assert!(lots.nulls().len() > 20);
        // Distinct nulls: every injection uses a fresh identifier (Codd-style).
        let some = TpchGenerator::new(TpchConfig {
            null_rate: 0.1,
            ..TpchConfig::default()
        })
        .generate();
        assert!(!some.is_complete());
    }

    #[test]
    fn scaled_to_hits_target_roughly() {
        let cfg = TpchConfig::scaled_to(1100, 0.01, 7);
        let db = TpchGenerator::new(cfg).generate();
        let total = db.total_tuples();
        assert!(total > 500 && total < 2500, "total {total}");
    }

    #[test]
    fn queries_validate_and_run_on_generated_data() {
        let db = TpchGenerator::new(TpchConfig::default()).generate();
        for q in TpchGenerator::queries() {
            q.expr
                .validate(db.schema())
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            let out = naive_eval(&q.expr, &db).unwrap();
            // Smoke: the join query returns something on the default config.
            if q.name == "W1_customer_orders_join" {
                assert!(!out.is_empty());
            }
        }
    }

    #[test]
    fn translatable_queries_exclude_division() {
        let qs = TpchGenerator::translatable_queries();
        assert_eq!(qs.len(), TpchGenerator::queries().len() - 1);
        assert!(qs.iter().all(|q| !q.name.starts_with("W7")));
    }

    #[test]
    fn complete_database_queries_have_textbook_answers() {
        let db = TpchGenerator::new(TpchConfig {
            null_rate: 0.0,
            customers: 5,
            orders_per_customer: 1,
            lineitems_per_order: 1,
            parts: 3,
            suppliers: 2,
            nations: 2,
            seed: 1,
        })
        .generate();
        // Every customer has an order, so W2 is empty.
        let w2 = &TpchGenerator::queries()[1];
        assert!(eval(&w2.expr, &db).unwrap().is_empty());
        // The tautology query returns every order key.
        let w4 = &TpchGenerator::queries()[3];
        assert_eq!(eval(&w4.expr, &db).unwrap().len(), 5);
    }
}
