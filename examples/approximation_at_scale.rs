//! Approximating certain answers on a TPC-H-like workload: the trade-off
//! between the exact computation, the (Q+, Q?) scheme, the (Qt, Qf) scheme
//! and the c-table strategies, measured on synthetic data with injected
//! nulls (the E3/E4 experiments in miniature).
//!
//! Run with: `cargo run --release --example approximation_at_scale`

use certa::certain::approx37;
use certa::certain::approx51;
use certa::prelude::*;
use std::time::Instant;

fn main() {
    let config = TpchConfig::scaled_to(800, 0.05, 7);
    let generator = TpchGenerator::new(config);
    let db = generator.generate();
    println!(
        "Generated TPC-H-like database: {} tuples, {} nulls\n",
        db.total_tuples(),
        db.nulls().len()
    );

    println!(
        "{:<32} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "query", "naive", "Q+", "Q?", "naive µs", "Q+ µs"
    );
    for query in TpchGenerator::translatable_queries() {
        let start = Instant::now();
        let naive = naive_eval(&query.expr, &db).unwrap();
        let naive_us = start.elapsed().as_micros();

        let pair = approx37::translate(&query.expr, db.schema()).unwrap();
        let start = Instant::now();
        let plus = eval(&pair.q_plus, &db).unwrap();
        let plus_us = start.elapsed().as_micros();
        let question = eval(&pair.q_question, &db).unwrap();

        println!(
            "{:<32} {:>8} {:>8} {:>10} {:>10} {:>10}",
            query.name,
            naive.len(),
            plus.len(),
            question.len(),
            naive_us,
            plus_us
        );
    }

    println!("\nWhy the (Qt, Qf) scheme does not scale: its Qf translation");
    println!("multiplies active-domain powers. On a small slice of the data:");
    let small = TpchGenerator::new(TpchConfig {
        customers: 4,
        orders_per_customer: 2,
        lineitems_per_order: 1,
        parts: 4,
        suppliers: 2,
        nations: 2,
        null_rate: 0.1,
        seed: 3,
    })
    .generate();
    let w2 = &TpchGenerator::queries()[1];
    let pair51 = approx51::translate(&w2.expr, small.schema()).unwrap();
    let start = Instant::now();
    let qt = eval(&pair51.q_true, &small).unwrap();
    let qf = eval(&pair51.q_false, &small).unwrap();
    println!(
        "  |dom| = {}, Qt = {} tuples, Qf = {} tuples, took {} µs",
        small.active_domain().len(),
        qt.len(),
        qf.len(),
        start.elapsed().as_micros()
    );

    println!("\nConditional-table strategies on the same query (certain / possible):");
    for strategy in Strategy::ALL {
        let result = eval_conditional(&w2.expr, &small, strategy).unwrap();
        println!(
            "  Eval^{:<2} certain = {:>3}, possible = {:>3}, condition size = {}",
            strategy.symbol(),
            result.certain().len(),
            result.possible().len(),
            result.condition_size()
        );
    }
}
