//! EXPLAIN ANALYZE and trace export: run a TPC-H-style join through the
//! pipeline under a trace, print the physical plan annotated with the
//! *measured* per-operator rows and wall time, dump the metric registry's
//! spend, and write a `chrome://tracing` / Perfetto-loadable profile.
//!
//! Run with: `cargo run --release --example explain_analyze`

use certa::obs;
use certa::prelude::*;

fn main() {
    // The a07-style workload: customers joined to their orders, with a
    // few customer nations gone missing during data entry.
    let db = TpchGenerator::new(TpchConfig::scaled_to(500, 0.01, 42)).generate();
    let sql = "SELECT c.name, o.orderkey FROM Customer c, Orders o \
               WHERE c.custkey = o.custkey AND o.totalprice <> 0";

    let mut pipeline = Pipeline::new();

    // Metrics are always on; bracket the request with registry snapshots
    // to see exactly what this one request spent.
    let before = obs::metrics().snapshot();
    let report = pipeline
        .explain_analyze(sql, &db)
        .expect("the join lowers and executes");
    let spent = obs::metrics().snapshot().delta(&before);

    // The annotated plan: every line carries rows + inclusive/self time
    // measured from the span that executed that operator.
    println!("{report}\n");

    println!("registry spend for this request:");
    println!("{}\n", spent.to_json());

    // The full trace — the pipeline run (dispatch, backend, maintenance)
    // plus the plan replay — as Chrome trace JSON. Open it at
    // chrome://tracing or https://ui.perfetto.dev.
    let path = std::env::temp_dir().join("certa_explain_analyze.trace.json");
    std::fs::write(&path, report.trace.to_chrome_json()).expect("trace written");
    println!(
        "wrote {} ({} span(s)) — load it in chrome://tracing or Perfetto",
        path.display(),
        report.trace.span_count()
    );
}
