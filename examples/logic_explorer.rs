//! Explore the many-valued logics of §5: Kleene's tables, the derived
//! six-valued epistemic logic, the knowledge order, and the Boolean-FO
//! capture of SQL's three-valued evaluation.
//!
//! Run with: `cargo run --example logic_explorer`

use certa::logic::props;
use certa::logic::translate;
use certa::logic::truth::{SixValued, Truth6};
use certa::prelude::*;

fn main() {
    // Kleene's tables (Figure 3).
    println!("Kleene three-valued logic (Figure 3):");
    print!("  ∧ |");
    for b in Truth3::ALL {
        print!(" {b}");
    }
    println!();
    for a in Truth3::ALL {
        print!("  {a} |");
        for b in Truth3::ALL {
            print!(" {}", a.and(b));
        }
        println!();
    }
    println!();

    // The six-valued logic derived from possible-worlds interpretations.
    let l6 = SixValued::default();
    println!("Derived six-valued epistemic logic L6v (conjunction):");
    print!("  ∧  |");
    for b in Truth6::ALL {
        print!(" {:>2}", b.symbol());
    }
    println!();
    for a in Truth6::ALL {
        print!("  {:>2} |", a.symbol());
        for b in Truth6::ALL {
            print!(" {:>2}", l6.and6(a, b).symbol());
        }
        println!();
    }
    println!();
    println!("L6v idempotent?            {}", props::is_idempotent(&l6));
    println!("L6v distributive?          {}", props::is_distributive(&l6));
    println!(
        "L6v knowledge-monotone?    {}",
        props::respects_knowledge_order(&l6)
    );
    let maximal = props::maximal_distributive_idempotent_sublogics(&l6);
    println!(
        "maximal distributive+idempotent sublogic(s): {:?}",
        maximal
            .iter()
            .map(|s| s.iter().map(|v| v.symbol()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    println!("→ Theorem 5.3: Kleene's logic is the right propositional choice.\n");

    // The assertion operator is what breaks SQL.
    let l3a = props::KleeneWithAssertion;
    println!(
        "assertion operator knowledge-monotone? {}",
        props::unary_respects_knowledge_order(&l3a, |v| v.assert())
    );
    println!("→ §5.2: the culprit is the collapse of u to f after WHERE.\n");

    // Boolean FO captures SQL's three-valued FO.
    let db = database_from_literal([(
        "R",
        vec!["a", "b"],
        vec![tup![1, Value::null(0)], tup![2, 3]],
    )]);
    let phi = Formula::exists(
        "y",
        Formula::rel("R", [Term::var("x"), Term::var("y")])
            .and(Formula::eq(Term::var("y"), Term::constant(3)).not()),
    );
    println!("φ(x) = ∃y (R(x, y) ∧ ¬(y = 3)) over {db}");
    for sem in [AtomSemantics::Sql, AtomSemantics::Unification] {
        let answers = query_answers(&phi, &["x"], &db, sem).unwrap();
        println!("  answers under {sem:?} semantics: {answers}");
    }
    let capture = translate::to_boolean(&phi, AtomSemantics::Sql).unwrap();
    println!("  Boolean capture of the t-region: {}", capture.pos);
    let boolean_answers = query_answers(&capture.pos, &["x"], &db, AtomSemantics::Boolean).unwrap();
    println!("  evaluated classically         : {boolean_answers}");
    println!("→ Theorems 5.4–5.5: three-valued logic adds no expressive power.");
}
