//! Probabilistic (almost-certain) answers and the 0–1 law of §4.3, plus
//! conditional probabilities under integrity constraints.
//!
//! Run with: `cargo run --example probabilistic_answers`

use certa::certain::constraints::{Constraint, FunctionalDependency, InclusionDependency};
use certa::certain::prob;
use certa::prelude::*;

fn main() {
    // The running example of §4.3: R = {1}, S = {⊥}.
    let db = database_from_literal([
        ("R", vec!["a"], vec![tup![1]]),
        ("S", vec!["a"], vec![tup![Value::null(0)]]),
    ]);
    let query = RaExpr::rel("R").difference(RaExpr::rel("S"));
    println!("D: R = {{1}}, S = {{⊥}};  Q = R − S\n");

    println!(
        "certain answer?            : {}",
        is_certain_answer(&query, &db, &tup![1]).unwrap()
    );
    println!(
        "almost certainly true?     : {}",
        almost_certainly_true(&query, &db, &tup![1]).unwrap()
    );
    println!("µ_k(Q, D, 1) as k grows:");
    for k in [2usize, 4, 8, 16, 32] {
        let frac = mu_k(&query, &db, &tup![1], k).unwrap();
        println!(
            "  k = {k:>3}: {}/{} = {:.4}",
            frac.numerator,
            frac.denominator,
            frac.as_f64()
        );
    }
    println!("→ the measure converges to 1 even though (1) is not certain.\n");

    // Conditioning on an inclusion constraint S ⊆ T turns the limit into a
    // genuine probability (1/2), Theorem 4.11's example.
    let db2 = database_from_literal([
        ("T", vec!["a"], vec![tup![1], tup![2]]),
        ("S", vec!["a"], vec![tup![Value::null(0)]]),
    ]);
    let q2 = RaExpr::rel("T").difference(RaExpr::rel("S"));
    let sigma = vec![Constraint::Ind(InclusionDependency::new(
        "S",
        vec![0],
        "T",
        vec![0],
    ))];
    println!("D: T = {{1,2}}, S = {{⊥}};  Σ: S ⊆ T;  Q = T − S");
    for k in [2usize, 4, 8, 16] {
        let frac = prob::mu_k_with_constraints(&q2, &db2, &tup![1], k, &sigma).unwrap();
        println!(
            "  µ_k(Q | Σ, D, 1) at k = {k:>2}: {}/{} = {:.4}",
            frac.numerator,
            frac.denominator,
            frac.as_f64()
        );
    }
    println!("→ exactly 1/2 for every k: the conditional limit is rational but not 0/1.\n");

    // Functional dependencies are even tamer: conditioning on an FD is the
    // same as chasing the database with it.
    let db3 = database_from_literal([(
        "Emp",
        vec!["name", "dept"],
        vec![
            tup!["ann", Value::null(0)],
            tup!["ann", "sales"],
            tup!["bob", "hr"],
        ],
    )]);
    let fd = FunctionalDependency::new("Emp", vec![0], vec![1]);
    let q3 = RaExpr::rel("Emp");
    println!("D: Emp = {{(ann, ⊥), (ann, sales), (bob, hr)}};  Σ: name → dept");
    println!(
        "  µ(Emp ∋ (ann, sales) | Σ) = {}",
        prob::mu_limit_with_fds(&q3, &db3, &tup!["ann", "sales"], std::slice::from_ref(&fd))
            .unwrap()
    );
    println!(
        "  without the FD, µ_4       = {:.3}",
        mu_k(&q3, &db3, &tup!["ann", "sales"], 4).unwrap().as_f64()
    );

    // Monte-Carlo estimation agrees with exact counting on larger pools.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sampled = prob::mu_k_sampled(&query, &db, &tup![1], 50, &[], 5000, &mut rng).unwrap();
    println!(
        "\nMonte-Carlo estimate of µ_50(R − S, D, 1) from 5000 samples: {:.4}",
        sampled.as_f64()
    );
}
