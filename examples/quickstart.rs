//! Quickstart: build an incomplete database, ask a query, and compare what
//! SQL-style evaluation, certain answers, and the approximation schemes say.
//!
//! Run with: `cargo run --example quickstart`

use certa::prelude::*;

fn main() {
    // A tiny library database: readers, loans, and one loan whose book id
    // went missing during data entry.
    let db = database_from_literal([
        (
            "Books",
            vec!["book", "title"],
            vec![
                tup!["b1", "Incomplete Information"],
                tup!["b2", "Three-Valued Logic"],
                tup!["b3", "Certain Answers"],
            ],
        ),
        (
            "Loans",
            vec!["reader", "book"],
            vec![tup!["alice", "b1"], tup!["bob", Value::null(0)]],
        ),
    ]);
    println!("Database:\n{db}\n");

    // Which books are currently NOT on loan?
    let available = RaExpr::rel("Books")
        .project(vec![0])
        .difference(RaExpr::rel("Loans").project(vec![1]));
    println!("Query: π_book(Books) − π_book(Loans)\n");

    // 1. Naïve (SQL-style) evaluation treats the null as just another value.
    let naive = naive_eval(&available, &db).expect("query is well-formed");
    println!("naïve evaluation        : {naive}");

    // 2. Certain answers: true in every possible world.
    let certain = cert_with_nulls(&available, &db).expect("small database");
    println!("certain answers (cert⊥) : {certain}");

    // 3. The (Q+, Q?) approximation brackets the truth without enumerating
    //    possible worlds.
    let plus = q_plus(&available, db.schema()).expect("supported fragment");
    let question = q_question(&available, db.schema()).expect("supported fragment");
    println!("certain approximation Q+: {}", eval(&plus, &db).unwrap());
    println!(
        "possible answers      Q?: {}",
        eval(&question, &db).unwrap()
    );

    // 4. Probabilistically, b3 is almost certainly available: the missing
    //    book id is unlikely to be exactly b3.
    for book in ["b1", "b2", "b3"] {
        let mu = mu_k(&available, &db, &tup![book], 10).unwrap();
        println!(
            "µ_10(available, {book})   : {}/{} = {:.2}",
            mu.numerator,
            mu.denominator,
            mu.as_f64()
        );
    }

    // 5. And the same analysis through the SQL front-end.
    let stmt =
        sql_parse("SELECT book FROM Books WHERE book NOT IN (SELECT book FROM Loans)").unwrap();
    let sql_answer = sql_execute(&stmt, &db).unwrap();
    println!("\nSQL answers the NOT IN query with: {sql_answer}");
    println!("…which misses that b2/b3 are only *probably* available, and");
    println!("returns nothing certain at all — the gap this library measures.");
}
