//! SQL to certain answers, end to end, through `certa::Pipeline`.
//!
//! Runs the introduction's unpaid-orders query over the Figure 1 shop
//! database (with its NULL perturbation) under every evaluation scheme the
//! pipeline offers, showing how each labels the answers, how the compiled
//! plan is reused across requests, and — via `Pipeline::explain` — what the
//! null-aware optimizer rewrote and which subplans it evaluates once
//! instead of once per possible world.
//!
//! Run with: `cargo run --example sql_certain_pipeline`

use certa::ctables::Strategy;
use certa::prelude::*;

fn print_answers(scheme: &str, answers: &LabeledAnswers) {
    println!("  [{scheme}] columns: {:?}", answers.columns);
    if answers.rows.is_empty() {
        println!("    (no answers)");
    }
    for (tuple, label) in &answers.rows {
        println!("    {tuple}  —  {label:?}");
    }
}

fn main() {
    // The Figure 1 database: one payment's order id is unknown (⊥).
    let db = shop_database(true);
    println!("database:\n{db}\n");

    let sql = "SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)";
    println!("query: {sql}\n");

    let mut pipeline = Pipeline::new();

    // What the optimizer did with the query, and which subplans are
    // world-invariant on this database (evaluated once, shared by every
    // possible world). Orders is null-free here, so the anti-join's
    // subquery side hoists; the Payments scan, which carries the ⊥, stays
    // in the per-world plan.
    let explain = pipeline.explain(sql, &db).expect("explain");
    println!("{explain}\n");

    // Plain evaluation treats the null as a value: o2 and o3 look unpaid.
    let naive = pipeline.query(sql, &db).expect("plain evaluation");
    println!("plain (nulls as values): {naive}\n");

    // Exact certain answers by (prepared, parallel) world enumeration.
    let exact = pipeline
        .execute(sql, &db, Scheme::Exact)
        .expect("exact scheme");
    print_answers("exact", &exact);

    // The (Q+, Q?) approximation: same certain answers, no enumeration.
    let approx = pipeline
        .execute(sql, &db, Scheme::Approx37)
        .expect("approx scheme");
    print_answers("approx37 (Q+, Q?)", &approx);

    // Conditional tables with eager grounding.
    let ctable = pipeline
        .execute(sql, &db, Scheme::CTable(Strategy::Eager))
        .expect("c-table scheme");
    print_answers("c-table (eager)", &ctable);

    // The (Qt, Qf) scheme labels certainly-false tuples instead.
    let qtqf = pipeline
        .execute(sql, &db, Scheme::Approx51)
        .expect("(Qt, Qf) scheme");
    print_answers("approx51 (Qt, Qf)", &qtqf);

    let (hits, misses) = pipeline.cache_stats();
    println!(
        "\nplan cache: {} compiled plan(s), {hits} hit(s), {misses} miss(es)",
        pipeline.cached_plans()
    );

    // No order is certainly unpaid — but o2 and o3 are possibly unpaid,
    // and every scheme agrees on that.
    assert!(exact.certain().is_empty());
    assert_eq!(exact.possible(), approx.possible());
    assert_eq!(approx.possible(), ctable.possible());
}
