//! The survey's introduction, end to end: Figure 1's database, one injected
//! NULL, and the three queries showing SQL's false negatives and false
//! positives with respect to certain answers.
//!
//! Run with: `cargo run --example unpaid_orders`

use certa::prelude::*;

fn main() {
    for with_null in [false, true] {
        let db = shop_database(with_null);
        println!("===============================================");
        println!(
            "Database {}:\n{db}\n",
            if with_null {
                "WITH the oid NULL in Payments"
            } else {
                "without nulls (as printed in Figure 1)"
            }
        );

        // Query 1: unpaid orders (SQL uses NOT IN).
        let stmt = sql_parse(ShopQueries::UNPAID_ORDERS_SQL).unwrap();
        let sql_answer = sql_execute(&stmt, &db).unwrap().to_set();
        let cert = cert_with_nulls(&ShopQueries::unpaid_orders(), &db).unwrap();
        println!("unpaid orders:");
        println!("  SQL            : {sql_answer}");
        println!("  certain answers: {cert}");

        // Query 2: customers without a paid order (SQL uses NOT EXISTS).
        let stmt = sql_parse(ShopQueries::NO_PAID_ORDER_SQL).unwrap();
        let sql_answer = sql_execute(&stmt, &db).unwrap().to_set();
        let cert = cert_with_nulls(&ShopQueries::customers_without_paid_order(), &db).unwrap();
        println!("customers without a paid order:");
        println!("  SQL            : {sql_answer}");
        println!("  certain answers: {cert}");

        // Query 3: the OR-tautology.
        let stmt = sql_parse(ShopQueries::OR_TAUTOLOGY_SQL).unwrap();
        let sql_answer = sql_execute(&stmt, &db).unwrap().to_set();
        let cert = cert_with_nulls(&ShopQueries::or_tautology(), &db).unwrap();
        println!("payers of o2 or of something other than o2:");
        println!("  SQL            : {sql_answer}");
        println!("  certain answers: {cert}");

        if with_null {
            println!();
            println!("With a single NULL, SQL turned a certain answer (o3) into");
            println!("a miss, invented c2 as an answer, and dropped c2 from a");
            println!("tautology — false negatives and false positives at once.");

            // The approximation schemes repair this without enumerating
            // possible worlds:
            let q = ShopQueries::or_tautology();
            let plus = q_plus(&q, db.schema()).unwrap();
            println!(
                "\nQ+ for the tautology query returns {} — sound, unlike SQL's c2-free\nanswer it comes with a guarantee; the exact certain answers add c2.",
                eval(&plus, &db).unwrap()
            );
        }
    }
}
