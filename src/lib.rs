//! Root crate of the `certa` workspace: a thin façade whose only job is to
//! host the cross-crate integration tests in `tests/` and the runnable
//! examples in `examples/` at the repository top level.
//!
//! All functionality lives in the member crates; see [`certa`] (and
//! `ARCHITECTURE.md`) for the crate map.

pub use certa;
