//! Differential testing of the two SQL execution paths.
//!
//! `certa-sql` can answer a query two ways:
//!
//! 1. **directly**, with the three-valued evaluator (`sql::execute`), a
//!    deliberately naïve nested-loop interpreter whose job is semantic
//!    fidelity to the SQL standard; and
//! 2. **lowered**, by translating the statement to relational algebra with
//!    the SQL-faithful lowering (`lower_to_algebra_3vl`, which compiles the
//!    three-valued rules into `const(·)` guards) and running the result
//!    through the physical engine via a [`PreparedQuery`].
//!
//! The two paths share almost no code — different crates, different
//! evaluation strategies, different data structures — so agreement on
//! seeded random `SELECT` statements over random null-heavy databases is a
//! strong cross-crate oracle for parser, lowering, condition semantics and
//! engine alike. `lower.rs`'s unit tests cover hand-picked cases; this
//! suite covers the combinatorial space.

use certa::prelude::*;
use certa::sql::lower_to_algebra_3vl;
use certa::workload::{random_sql, RandomSqlConfig};

/// Seeded cases per test — the acceptance bar is ≥ 200 with zero
/// disagreements.
const CASES: u64 = 300;

/// A null-heavy database over three join-friendly relations.
fn db_config(seed: u64) -> RandomDbConfig {
    RandomDbConfig {
        relations: vec![
            ("R".to_string(), 2),
            ("S".to_string(), 1),
            ("T".to_string(), 3),
        ],
        tuples_per_relation: 5,
        domain_size: 4,
        null_count: 3,
        null_rate: 0.3,
        seed,
    }
}

#[test]
fn direct_and_lowered_evaluation_agree_tuple_for_tuple() {
    let mut checked = 0u64;
    for seed in 0..CASES {
        let db = random_database(&db_config(seed));
        let sql = random_sql(
            db.schema(),
            &RandomSqlConfig {
                seed,
                ..RandomSqlConfig::default()
            },
        );
        let stmt = sql_parse(&sql).unwrap_or_else(|e| panic!("seed {seed}: {sql}: {e}"));
        let direct = sql_execute(&stmt, &db)
            .unwrap_or_else(|e| panic!("seed {seed}: {sql}: {e}"))
            .to_set();
        let lowered = lower_to_algebra_3vl(&stmt, db.schema())
            .unwrap_or_else(|e| panic!("seed {seed}: {sql}: {e}"));
        let prepared = PreparedQuery::prepare(&lowered.expr, db.schema()).unwrap();
        let engine = prepared.eval_set(&db).unwrap();
        assert_eq!(
            engine, direct,
            "seed {seed}: direct SQL and lowered algebra disagree\n  {sql}\non\n{db}"
        );
        checked += 1;
    }
    assert!(checked >= 200, "only {checked} cases were exercised");
}

#[test]
fn membership_free_fragment_agrees_with_multiplicities() {
    // Without `[NOT] IN` the lowered plan is π(σ(×(scans))), which
    // preserves SQL's duplicate semantics exactly — so the comparison can
    // be strengthened from sets to full bags by running the same prepared
    // plan under bag semantics.
    let mut checked = 0u64;
    for seed in 0..CASES {
        let db = random_database(&db_config(seed ^ 0x5eed));
        let sql = random_sql(
            db.schema(),
            &RandomSqlConfig {
                allow_membership: false,
                seed,
                ..RandomSqlConfig::default()
            },
        );
        let stmt = sql_parse(&sql).unwrap();
        let direct = sql_execute(&stmt, &db).unwrap();
        let lowered = lower_to_algebra_3vl(&stmt, db.schema()).unwrap();
        let prepared = PreparedQuery::prepare(&lowered.expr, db.schema()).unwrap();
        let engine = prepared.eval_bag(&db.to_bags()).unwrap();
        assert_eq!(
            engine, direct,
            "seed {seed}: bag multiplicities disagree\n  {sql}\non\n{db}"
        );
        checked += 1;
    }
    assert!(checked >= 200, "only {checked} cases were exercised");
}

#[test]
fn lowered_3vl_matches_syntactic_lowering_on_complete_databases() {
    // On complete databases the const(·) guards are vacuous: both lowerings
    // must produce the same answers (and the same as direct SQL).
    for seed in 0..100 {
        let db = random_database(&RandomDbConfig {
            null_rate: 0.0,
            ..db_config(seed)
        });
        let sql = random_sql(
            db.schema(),
            &RandomSqlConfig {
                seed: seed.wrapping_mul(31) + 7,
                ..RandomSqlConfig::default()
            },
        );
        let stmt = sql_parse(&sql).unwrap();
        let faithful = lower_to_algebra_3vl(&stmt, db.schema()).unwrap();
        let faithful_out = eval(&faithful.expr, &db).unwrap();
        let direct = sql_execute(&stmt, &db).unwrap().to_set();
        assert_eq!(faithful_out, direct, "seed {seed}: {sql}");
        // The syntactic lowering rejects general NOT and NULL literals;
        // where it applies, it must agree too.
        if let Ok(syntactic) = lower_to_algebra(&stmt, db.schema()) {
            assert_eq!(
                eval(&syntactic.expr, &db).unwrap(),
                direct,
                "seed {seed}: {sql}"
            );
        }
    }
}
