//! Cross-crate integration tests: exact certain answers versus naïve
//! evaluation, homomorphism preservation (Theorem 4.3/4.4), and the
//! relationships between the certainty notions of §3.

use certa::certain::object;
use certa::certain::worlds::{enumerate_worlds, exact_pool};
use certa::prelude::*;

/// Theorem 4.4 (cwa half): naïve evaluation computes certain answers with
/// nulls for UCQ and Pos∀G queries, on a spread of random databases.
#[test]
fn naive_eval_is_exact_for_positive_queries_under_cwa() {
    for seed in 0..12u64 {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 3,
            domain_size: 3,
            null_count: 2,
            null_rate: 0.3,
            seed,
            ..RandomDbConfig::default()
        });
        for qseed in 0..8u64 {
            let query = random_query(
                db.schema(),
                &RandomQueryConfig {
                    max_depth: 3,
                    allow_difference: false,
                    allow_disequality: false,
                    seed: qseed,
                },
            );
            assert!(classify(&query) <= Fragment::PosForallG);
            let naive = naive_eval(&query, &db).unwrap();
            let exact = cert_with_nulls(&query, &db).unwrap();
            assert_eq!(
                naive, exact,
                "naïve ≠ certain for positive query {query} on seed {seed}/{qseed}\n{db}"
            );
        }
    }
}

/// Pos∀G beyond UCQ: the division query "employees working on all projects"
/// is handled correctly by naïve evaluation under cwa (Theorem 4.4), even
/// though it is not a UCQ.
#[test]
fn division_query_naive_eval_matches_certain_answers() {
    let db = database_from_literal([
        (
            "Works",
            vec!["emp", "proj"],
            vec![
                tup!["ann", "p1"],
                tup!["ann", Value::null(0)],
                tup!["bob", "p1"],
                tup![Value::null(1), "p2"],
            ],
        ),
        ("Projects", vec!["proj"], vec![tup!["p1"], tup!["p2"]]),
    ]);
    let query = RaExpr::rel("Works").divide(RaExpr::rel("Projects"));
    assert_eq!(classify(&query), Fragment::PosForallG);
    let naive = naive_eval(&query, &db).unwrap();
    let exact = cert_with_nulls(&query, &db).unwrap();
    assert_eq!(naive, exact);
}

/// For full relational algebra, naïve evaluation is *not* certain-answer
/// correct (the {1} − {⊥} example), but it always contains the certain
/// answers (it is the almost-certainly-true set, Theorem 4.10).
#[test]
fn naive_eval_overapproximates_certain_answers_for_full_ra() {
    // The canonical separating instance: R = {1}, S = {⊥}, Q = R − S.
    let canonical = database_from_literal([
        ("R", vec!["a"], vec![tup![1]]),
        ("S", vec!["a"], vec![tup![Value::null(0)]]),
    ]);
    let q = RaExpr::rel("R").difference(RaExpr::rel("S"));
    let mut naive_strictly_larger = usize::from(
        cert_with_nulls(&q, &canonical).unwrap().len() < naive_eval(&q, &canonical).unwrap().len(),
    );
    assert_eq!(naive_strictly_larger, 1);
    for seed in 0..10u64 {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 3,
            domain_size: 3,
            null_count: 2,
            null_rate: 0.35,
            seed,
            ..RandomDbConfig::default()
        });
        for qseed in 0..6u64 {
            let query = random_query(
                db.schema(),
                &RandomQueryConfig {
                    max_depth: 3,
                    allow_difference: true,
                    allow_disequality: true,
                    seed: qseed,
                },
            );
            let naive = naive_eval(&query, &db).unwrap();
            let exact = cert_with_nulls(&query, &db).unwrap();
            assert!(
                exact.is_subset_of(&naive),
                "cert⊥ ⊄ naïve for {query} (seed {seed}/{qseed})"
            );
            if exact.len() < naive.len() {
                naive_strictly_larger += 1;
            }
        }
    }
    assert!(
        naive_strictly_larger > 0,
        "expected at least one query where naïve evaluation is not exact"
    );
}

/// Proposition 3.10: cert∩ is exactly the null-free part of cert⊥, and every
/// valuation maps cert⊥ into the corresponding world's answer.
#[test]
fn certainty_notions_are_consistent() {
    for seed in 0..8u64 {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 3,
            domain_size: 3,
            null_count: 2,
            null_rate: 0.3,
            seed,
            ..RandomDbConfig::default()
        });
        for qseed in 0..5u64 {
            let query = random_query(
                db.schema(),
                &RandomQueryConfig {
                    seed: qseed,
                    ..RandomQueryConfig::default()
                },
            );
            let with_nulls = cert_with_nulls(&query, &db).unwrap();
            let intersection = cert_intersection(&query, &db).unwrap();
            assert_eq!(
                with_nulls.const_tuples(),
                intersection,
                "query {query} seed {seed}/{qseed}"
            );
            let spec = exact_pool(&query, &db);
            for (v, world) in enumerate_worlds(&db, &spec).unwrap() {
                let answer = eval(&query, &world).unwrap();
                assert!(v.apply_relation(&with_nulls).is_subset_of(&answer));
            }
        }
    }
}

/// The certain-answer object (certO) entails every intersection-based
/// certain answer: all constant tuples of cert∩ appear in the product of
/// the possible answers (the product is taken over a small world pool —
/// enough for the containment, and the full product is doubly exponential,
/// which is the point of Theorem 3.11).
#[test]
fn cert_object_contains_intersection_certain_answers() {
    use certa::certain::worlds::WorldSpec;
    let db = database_from_literal([
        (
            "R",
            vec!["a", "b"],
            vec![tup![1, 2], tup![1, Value::null(0)], tup![Value::null(1), 4]],
        ),
        ("S", vec!["b"], vec![tup![2], tup![4]]),
    ]);
    let small_pool = WorldSpec::new([Const::Int(100), Const::Int(200)]);
    for query in [
        RaExpr::rel("R"),
        RaExpr::rel("R").project(vec![0]),
        RaExpr::rel("R")
            .join_on(RaExpr::rel("S"), &[(1, 0)], 2)
            .project(vec![0, 1]),
    ] {
        let object = object::cert_object_product(&query, &db, &small_pool).unwrap();
        let intersection = cert_intersection(&query, &db).unwrap();
        for t in intersection.iter() {
            assert!(
                object.contains(t),
                "certO product misses intersection-certain tuple {t} for {query}"
            );
        }
    }
}

/// The world-enumeration bound protects against accidental exponential
/// blow-ups: a database with many nulls triggers the TooManyWorlds error
/// instead of hanging.
#[test]
fn world_bound_guards_exponential_enumeration() {
    let db = random_database(&RandomDbConfig {
        relations: vec![("R".to_string(), 3)],
        tuples_per_relation: 30,
        domain_size: 40,
        null_count: 30,
        null_rate: 0.9,
        seed: 5,
    });
    assert!(db.nulls().len() >= 10);
    let query = RaExpr::rel("R");
    assert!(cert_with_nulls(&query, &db).is_err());
}
