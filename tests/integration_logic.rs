//! Integration tests for the many-valued-logic layer (§5): correctness
//! guarantees of the unification semantics, the agreement between the SQL
//! front-end and the FO↑SQL formalisation, and the Boolean-FO capture on
//! random databases.

use certa::logic::translate;
use certa::prelude::*;

/// Corollary 5.2: whenever ⟦φ⟧unif is t, the tuple is a certain answer with
/// nulls; whenever it is f, the tuple is certainly false. Checked for
/// relational atoms and small composite formulae on random databases.
#[test]
fn unification_semantics_has_correctness_guarantees() {
    for seed in 0..10u64 {
        let db = random_database(&RandomDbConfig {
            relations: vec![("R".to_string(), 2)],
            tuples_per_relation: 3,
            domain_size: 3,
            null_count: 2,
            null_rate: 0.35,
            seed,
        });
        // φ(x, y) = R(x, y); the corresponding algebra query is R itself.
        let phi = Formula::rel("R", [Term::var("x"), Term::var("y")]);
        let query = RaExpr::rel("R");
        let certain_true =
            query_answers(&phi, &["x", "y"], &db, AtomSemantics::Unification).unwrap();
        for t in certain_true.iter() {
            assert!(
                is_certain_answer(&query, &db, t).unwrap(),
                "⟦R⟧unif said t but {t} is not certain (seed {seed})\n{db}"
            );
        }
        let certain_false = certa::logic::semantics::answers_with_value(
            &phi,
            &["x", "y"],
            &db,
            AtomSemantics::Unification,
            Truth3::False,
        )
        .unwrap();
        for t in certain_false.iter() {
            assert!(
                is_certainly_false(&query, &db, t).unwrap(),
                "⟦R⟧unif said f but {t} is not certainly false (seed {seed})\n{db}"
            );
        }
    }
}

/// The Boolean semantics, by contrast, mislabels tuples as false: the §5.1
/// example where R(1,1) is "false" even though R contains (1, ⊥).
#[test]
fn boolean_semantics_lacks_correctness_guarantees() {
    let db = database_from_literal([("R", vec!["a", "b"], vec![tup![1, Value::null(0)]])]);
    let phi = Formula::rel("R", [Term::constant(1), Term::constant(1)]);
    let value = eval_formula(&phi, &db, &Assignment::new(), AtomSemantics::Boolean).unwrap();
    assert_eq!(value, Truth3::False);
    // ... but (1,1) is not certainly false: the valuation ⊥ ↦ 1 puts it in R.
    assert!(!is_certainly_false(&RaExpr::rel("R"), &db, &tup![1, 1]).unwrap());
    // The unification semantics correctly reports u.
    let value = eval_formula(&phi, &db, &Assignment::new(), AtomSemantics::Unification).unwrap();
    assert_eq!(value, Truth3::Unknown);
}

/// Theorem 5.4/5.5 on random databases: the Boolean capture of a formula
/// under the SQL mixed semantics (with and without the assertion operator)
/// agrees with the three-valued evaluation for every truth value.
#[test]
fn boolean_fo_captures_sql_semantics_on_random_databases() {
    let formulas = [
        // ∃y (R(x,y) ∧ y = 1)
        Formula::exists(
            "y",
            Formula::rel("R", [Term::var("x"), Term::var("y")])
                .and(Formula::eq(Term::var("y"), Term::constant(1))),
        ),
        // ¬∃y (R(x,y) ∧ ¬(y = 1))   — a NOT EXISTS shape
        Formula::exists(
            "y",
            Formula::rel("R", [Term::var("x"), Term::var("y")])
                .and(Formula::eq(Term::var("y"), Term::constant(1)).not()),
        )
        .not(),
        // SQL's NOT IN: ¬↑∃y (S(y) ∧ x = y)
        Formula::exists(
            "y",
            Formula::rel("S", [Term::var("y")]).and(Formula::eq(Term::var("x"), Term::var("y"))),
        )
        .assert()
        .not(),
        // ∀y (¬R(x,y) ∨ S(y))
        Formula::forall(
            "y",
            Formula::rel("R", [Term::var("x"), Term::var("y")])
                .not()
                .or(Formula::rel("S", [Term::var("y")])),
        ),
    ];
    for seed in 0..8u64 {
        let db = random_database(&RandomDbConfig {
            relations: vec![("R".to_string(), 2), ("S".to_string(), 1)],
            tuples_per_relation: 3,
            domain_size: 3,
            null_count: 2,
            null_rate: 0.3,
            seed,
        });
        for phi in &formulas {
            let capture = translate::to_boolean(phi, AtomSemantics::Sql).unwrap();
            for target in Truth3::ALL {
                let expected = certa::logic::semantics::answers_with_value(
                    phi,
                    &["x"],
                    &db,
                    AtomSemantics::Sql,
                    target,
                )
                .unwrap();
                let got = query_answers(
                    &capture.for_value(target),
                    &["x"],
                    &db,
                    AtomSemantics::Boolean,
                )
                .unwrap();
                assert_eq!(expected, got, "{phi} at {target} (seed {seed})\n{db}");
            }
        }
    }
}

/// The FO↑SQL account of SQL (§5.2) agrees with the SQL engine: for the
/// Figure 1 NOT IN query, the formula ∃-form with the assertion operator
/// returns exactly SQL's rows.
#[test]
fn fo_up_sql_matches_sql_engine_on_not_in() {
    let db = shop_database(true);
    // SQL: SELECT oid FROM Orders WHERE oid NOT IN (SELECT oid FROM Payments)
    // FO↑SQL: answers x with Orders(x, t, p) for some t, p and
    //          ↑¬∃c∃o (Payments(c, o) ∧ x = o)  — the assertion operator
    //          sits at the WHERE boundary, i.e. it applies to the already
    //          negated membership condition.
    let phi = Formula::exists(
        "t",
        Formula::exists(
            "p",
            Formula::rel("Orders", [Term::var("x"), Term::var("t"), Term::var("p")]),
        ),
    )
    .and(
        Formula::exists(
            "c",
            Formula::exists(
                "o",
                Formula::rel("Payments", [Term::var("c"), Term::var("o")])
                    .and(Formula::eq(Term::var("x"), Term::var("o"))),
            ),
        )
        .not()
        .assert(),
    );
    let fo_answers = query_answers(&phi, &["x"], &db, AtomSemantics::Sql).unwrap();
    let stmt = sql_parse(ShopQueries::UNPAID_ORDERS_SQL).unwrap();
    let sql_answers = sql_execute(&stmt, &db).unwrap().to_set();
    assert_eq!(fo_answers, sql_answers);
    // And on the complete database too.
    let db = shop_database(false);
    let fo_answers = query_answers(&phi, &["x"], &db, AtomSemantics::Sql).unwrap();
    let stmt = sql_parse(ShopQueries::UNPAID_ORDERS_SQL).unwrap();
    let sql_answers = sql_execute(&stmt, &db).unwrap().to_set();
    assert_eq!(fo_answers, sql_answers);
}

/// Without the assertion operator (plain FOSQL), query answers are always
/// almost certainly true (§5.2); with it, they need not be. The nested
/// NOT IN example separates the two.
#[test]
fn assertion_operator_separates_fosql_from_fo_up_sql() {
    let (db, _, algebra) = ShopQueries::nested_not_in_example();
    // FO↑SQL version of the nested NOT IN query over the single attribute A:
    // R(x) ∧ ↑¬∃y (S(y) ∧ x = y ∧ ↑¬∃z (T(z) ∧ y = z)).
    let with_assert = Formula::rel("R", [Term::var("x")]).and(
        Formula::exists(
            "y",
            Formula::rel("S", [Term::var("y")])
                .and(Formula::eq(Term::var("x"), Term::var("y")))
                .and(
                    Formula::exists(
                        "z",
                        Formula::rel("T", [Term::var("z")])
                            .and(Formula::eq(Term::var("y"), Term::var("z"))),
                    )
                    .not()
                    .assert(),
                ),
        )
        .not()
        .assert(),
    );
    let answers = query_answers(&with_assert, &["x"], &db, AtomSemantics::Sql).unwrap();
    assert!(answers.contains(&tup![1]));
    // 1 is almost certainly NOT an answer to the real query.
    assert!(!almost_certainly_true(&algebra, &db, &tup![1]).unwrap());
    // The Kleene version without the assertion operator does not return 1 as
    // a (certainly) true answer.
    let without_assert = Formula::rel("R", [Term::var("x")]).and(
        Formula::exists(
            "y",
            Formula::rel("S", [Term::var("y")])
                .and(Formula::eq(Term::var("x"), Term::var("y")))
                .and(
                    Formula::exists(
                        "z",
                        Formula::rel("T", [Term::var("z")])
                            .and(Formula::eq(Term::var("y"), Term::var("z"))),
                    )
                    .not(),
                ),
        )
        .not(),
    );
    let answers = query_answers(&without_assert, &["x"], &db, AtomSemantics::Sql).unwrap();
    assert!(!answers.contains(&tup![1]));
}
