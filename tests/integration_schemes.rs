//! Cross-crate integration tests for the approximation schemes of §4.2:
//! correctness guarantees of (Qt, Qf) and (Q+, Q?) on random instances,
//! their relationship to the conditional-table strategies (Theorem 4.9),
//! and the bag-semantics bounds (Theorem 4.8).

use certa::certain::{approx37, approx51, bag_bounds, cert};
use certa::prelude::*;

fn random_setup(seed: u64, qseed: u64) -> (Database, RaExpr) {
    let db = random_database(&RandomDbConfig {
        tuples_per_relation: 3,
        domain_size: 3,
        null_count: 2,
        null_rate: 0.3,
        seed,
        ..RandomDbConfig::default()
    });
    let query = random_query(
        db.schema(),
        &RandomQueryConfig {
            max_depth: 3,
            allow_difference: true,
            allow_disequality: true,
            seed: qseed,
        },
    );
    (db, query)
}

/// Theorem 4.6: Qt(D) ⊆ cert⊥(Q, D) and Qf(D) consists of certainly-false
/// tuples, across random full-RA queries.
#[test]
fn qt_qf_correctness_guarantees_on_random_queries() {
    for seed in 0..8u64 {
        for qseed in 0..5u64 {
            let (db, query) = random_setup(seed, qseed);
            let Ok(pair) = approx51::translate(&query, db.schema()) else {
                continue;
            };
            let qt = eval(&pair.q_true, &db).unwrap();
            let exact = cert_with_nulls(&query, &db).unwrap();
            assert!(
                qt.is_subset_of(&exact),
                "Qt ⊄ cert⊥ for {query} (seed {seed}/{qseed})"
            );
            let qf = eval(&pair.q_false, &db).unwrap();
            let certainly_false = cert::certainly_false_among(&query, &db, &qf).unwrap();
            assert_eq!(
                certainly_false, qf,
                "Qf returned a possibly-true tuple for {query} (seed {seed}/{qseed})"
            );
        }
    }
}

/// Theorem 4.7: v(Q+(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)) for every valuation, plus
/// Q+(D) = Q(D) on complete databases.
#[test]
fn q_plus_q_question_sandwich_on_random_queries() {
    use certa::certain::worlds::{enumerate_worlds, exact_pool};
    for seed in 0..8u64 {
        for qseed in 0..5u64 {
            let (db, query) = random_setup(seed, qseed);
            let pair = approx37::translate(&query, db.schema()).unwrap();
            let plus = eval(&pair.q_plus, &db).unwrap();
            let question = eval(&pair.q_question, &db).unwrap();
            let spec = exact_pool(&query, &db);
            for (v, world) in enumerate_worlds(&db, &spec).unwrap() {
                let answer = eval(&query, &world).unwrap();
                assert!(v.apply_relation(&plus).is_subset_of(&answer));
                assert!(answer.is_subset_of(&v.apply_relation(&question)));
            }
        }
    }
}

/// On complete databases both schemes coincide with the plain evaluation.
#[test]
fn schemes_collapse_on_complete_databases() {
    for seed in 0..6u64 {
        let db = random_database(&RandomDbConfig {
            null_rate: 0.0,
            null_count: 0,
            seed,
            ..RandomDbConfig::default()
        });
        assert!(db.is_complete());
        for qseed in 0..5u64 {
            let query = random_query(
                db.schema(),
                &RandomQueryConfig {
                    seed: qseed,
                    ..RandomQueryConfig::default()
                },
            );
            let expected = eval(&query, &db).unwrap();
            let pair = approx37::translate(&query, db.schema()).unwrap();
            assert_eq!(eval(&pair.q_plus, &db).unwrap(), expected);
            assert_eq!(eval(&pair.q_question, &db).unwrap(), expected);
            if let Ok(pair51) = approx51::translate(&query, db.schema()) {
                assert_eq!(eval(&pair51.q_true, &db).unwrap(), expected);
            }
        }
    }
}

/// Theorem 4.9: every c-table strategy has correctness guarantees, and the
/// eager strategy coincides with the (Q+, Q?) scheme:
/// `Q+(D) = Evalᵉ_t(Q, D)` and `Q?(D) = Evalᵉ_p(Q, D)`.
#[test]
fn ctable_strategies_match_q_plus_scheme() {
    for seed in 0..8u64 {
        for qseed in 0..5u64 {
            let (db, query) = random_setup(seed, qseed);
            let pair = approx37::translate(&query, db.schema()).unwrap();
            let plus = eval(&pair.q_plus, &db).unwrap();
            let question = eval(&pair.q_question, &db).unwrap();
            let eager = eval_conditional(&query, &db, Strategy::Eager).unwrap();
            assert_eq!(
                eager.certain(),
                plus,
                "Evalᵉ_t ≠ Q+ for {query} (seed {seed}/{qseed})"
            );
            assert_eq!(
                eager.possible(),
                question,
                "Evalᵉ_p ≠ Q? for {query} (seed {seed}/{qseed})"
            );
            // Correctness guarantee for all strategies.
            let exact = cert_with_nulls(&query, &db).unwrap();
            for strategy in Strategy::ALL {
                let result = eval_conditional(&query, &db, strategy).unwrap();
                assert!(
                    result.certain().is_subset_of(&exact),
                    "Eval^{} not sound for {query} (seed {seed}/{qseed})",
                    strategy.symbol()
                );
            }
        }
    }
}

/// The strategies are ordered: eager ⊆ semi-eager ⊆ aware on their certain
/// answers (the containments discussed in §6 "Quality of approximations").
#[test]
fn ctable_strategies_are_ordered_by_informativeness() {
    for seed in 0..8u64 {
        for qseed in 0..5u64 {
            let (db, query) = random_setup(seed, qseed);
            let eager = eval_conditional(&query, &db, Strategy::Eager)
                .unwrap()
                .certain();
            let semi = eval_conditional(&query, &db, Strategy::SemiEager)
                .unwrap()
                .certain();
            let aware = eval_conditional(&query, &db, Strategy::Aware)
                .unwrap()
                .certain();
            assert!(eager.is_subset_of(&semi), "{query} seed {seed}/{qseed}");
            assert!(semi.is_subset_of(&aware), "{query} seed {seed}/{qseed}");
        }
    }
}

/// Theorem 4.8 on random bag databases: the (Q+, Q?) multiplicities bracket
/// the exact minimum multiplicity.
#[test]
fn bag_bounds_sandwich_on_random_databases() {
    for seed in 0..6u64 {
        let set_db = random_database(&RandomDbConfig {
            tuples_per_relation: 3,
            domain_size: 3,
            null_count: 2,
            null_rate: 0.3,
            seed,
            ..RandomDbConfig::default()
        });
        // Duplicate some tuples to make the bags non-trivial.
        let mut bag_db = set_db.to_bags();
        for (name, rel) in set_db.iter() {
            if let Some(first) = rel.iter().next() {
                bag_db
                    .relation_mut(name)
                    .unwrap()
                    .insert_n(first.clone(), 2);
            }
        }
        for qseed in 0..4u64 {
            let query = random_query(
                set_db.schema(),
                &RandomQueryConfig {
                    seed: qseed,
                    ..RandomQueryConfig::default()
                },
            );
            let candidates: Vec<Tuple> = naive_eval(&query, &set_db)
                .unwrap()
                .iter()
                .cloned()
                .collect();
            for t in candidates.into_iter().take(3) {
                let (lower, exact_box, upper) =
                    bag_bounds::certainty_sandwich(&query, &bag_db, &t).unwrap();
                assert!(lower <= exact_box, "{query} {t} seed {seed}/{qseed}");
                assert!(exact_box <= upper, "{query} {t} seed {seed}/{qseed}");
            }
        }
    }
}

/// The quality metrics of E4: Q+ always has precision 1 against the exact
/// certain answers, and never beats them on recall.
#[test]
fn q_plus_quality_metrics() {
    for seed in 0..8u64 {
        for qseed in 0..4u64 {
            let (db, query) = random_setup(seed, qseed);
            let pair = approx37::translate(&query, db.schema()).unwrap();
            let plus = eval(&pair.q_plus, &db).unwrap();
            let exact = cert_with_nulls(&query, &db).unwrap();
            let quality = AnswerQuality::compare(&plus, &exact);
            assert_eq!(quality.precision(), 1.0, "{query} seed {seed}/{qseed}");
            assert!(quality.recall() <= 1.0);
            assert!(quality.has_correctness_guarantee());
        }
    }
}
