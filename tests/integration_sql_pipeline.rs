//! Integration tests for the SQL pipeline: parsing, three-valued execution,
//! lowering to relational algebra, and the relationship between SQL's
//! answers, certain answers, and almost-certain answers (§1, §4.3, §5.2).

use certa::prelude::*;

#[test]
fn figure_1_false_negatives_and_false_positives() {
    let complete = shop_database(false);
    let with_null = shop_database(true);

    // Without nulls: SQL and certain answers agree on all three queries.
    for (sql, algebra) in [
        (ShopQueries::UNPAID_ORDERS_SQL, ShopQueries::unpaid_orders()),
        (
            ShopQueries::NO_PAID_ORDER_SQL,
            ShopQueries::customers_without_paid_order(),
        ),
        (ShopQueries::OR_TAUTOLOGY_SQL, ShopQueries::or_tautology()),
    ] {
        let stmt = sql_parse(sql).unwrap();
        let sql_answer = sql_execute(&stmt, &complete).unwrap().to_set();
        let certain = cert_with_nulls(&algebra, &complete).unwrap();
        assert_eq!(sql_answer, certain, "{sql}");
    }

    // With the null: the unpaid-orders query loses its answer (the certain
    // answers are empty too, but SQL *also* fails to report o3 as possible),
    // the NOT EXISTS query invents c2, and the tautology query misses c2.
    let stmt = sql_parse(ShopQueries::UNPAID_ORDERS_SQL).unwrap();
    assert!(sql_execute(&stmt, &with_null).unwrap().is_empty());
    assert!(cert_with_nulls(&ShopQueries::unpaid_orders(), &with_null)
        .unwrap()
        .is_empty());

    let stmt = sql_parse(ShopQueries::NO_PAID_ORDER_SQL).unwrap();
    let sql_answer = sql_execute(&stmt, &with_null).unwrap().to_set();
    assert_eq!(sql_answer, Relation::from_tuples(vec![tup!["c2"]]));
    // c2 is a false positive: it is not certain.
    let certain =
        cert_with_nulls(&ShopQueries::customers_without_paid_order(), &with_null).unwrap();
    assert!(certain.is_empty());
    // It is not even almost certainly true (µ = 0): for a random
    // interpretation of the null, c2's payment matches some order only with
    // vanishing probability — but the order id must match an existing order
    // for c2 to have a paid order, so the naive answer *does* contain c2.
    assert!(almost_certainly_true(
        &ShopQueries::customers_without_paid_order(),
        &with_null,
        &tup!["c2"]
    )
    .unwrap());

    let stmt = sql_parse(ShopQueries::OR_TAUTOLOGY_SQL).unwrap();
    let sql_answer = sql_execute(&stmt, &with_null).unwrap().to_set();
    let certain = cert_with_nulls(&ShopQueries::or_tautology(), &with_null).unwrap();
    assert_eq!(sql_answer, Relation::from_tuples(vec![tup!["c1"]]));
    assert_eq!(certain, Relation::from_tuples(vec![tup!["c1"], tup!["c2"]]));
    // SQL missed a certain answer: a false negative.
    assert!(sql_answer.is_subset_of(&certain));
    assert_ne!(sql_answer, certain);
}

#[test]
fn nested_not_in_returns_almost_certainly_false_answer() {
    // §5.1/§5.2: SQL's R − (S − T) query returns 1, yet µ(Q, D, 1) = 0 —
    // SQL can return answers that are almost certainly false, because its
    // WHERE clause applies the assertion operator mid-query.
    let (db, sql, algebra) = ShopQueries::nested_not_in_example();
    let stmt = sql_parse(sql).unwrap();
    let sql_answer = sql_execute(&stmt, &db).unwrap().to_set();
    assert_eq!(sql_answer, Relation::from_tuples(vec![tup![1]]));
    assert!(!almost_certainly_true(&algebra, &db, &tup![1]).unwrap());
    assert!(!is_certain_answer(&algebra, &db, &tup![1]).unwrap());
    // The measure µ_k is 1/k: 1 is an answer only in the single world where
    // ⊥ happens to be 1, so the limit µ is 0 (almost certainly false).
    for k in [2usize, 4, 8] {
        let frac = mu_k(&algebra, &db, &tup![1], k).unwrap();
        assert_eq!((frac.numerator, frac.denominator), (1, k as u128));
    }
}

#[test]
fn lowered_sql_flows_into_approximation_schemes() {
    // Parse SQL → lower to algebra → rewrite with Q+ → evaluate: the full
    // pipeline a "correct SQL" implementation would use (§4.2).
    let db = shop_database(true);
    let stmt = sql_parse(ShopQueries::UNPAID_ORDERS_SQL).unwrap();
    let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
    let plus = q_plus(&lowered.expr, db.schema()).unwrap();
    let question = q_question(&lowered.expr, db.schema()).unwrap();
    let certain_approx = eval(&plus, &db).unwrap();
    let possible_approx = eval(&question, &db).unwrap();
    let exact = cert_with_nulls(&lowered.expr, &db).unwrap();
    assert!(certain_approx.is_subset_of(&exact));
    // o3 is a possible answer that plain SQL silently dropped.
    assert!(possible_approx.iter().any(|t| t == &tup!["o3"]));
}

#[test]
fn sql_where_true_rows_are_almost_certainly_true_for_flat_queries() {
    // For queries whose WHERE clause contains no subqueries, SQL's answers
    // coincide with naïve evaluation of the lowered algebra, hence they are
    // almost certainly true (the FOSQL case of §5.2, before the assertion
    // operator is nested).
    let db = shop_database(true);
    for sql in [
        "SELECT cid FROM Payments WHERE oid = 'o1'",
        "SELECT oid FROM Orders WHERE price <> 35",
        "SELECT O.oid FROM Orders O, Payments P WHERE O.oid = P.oid",
    ] {
        let stmt = sql_parse(sql).unwrap();
        let rows = sql_execute(&stmt, &db).unwrap();
        let lowered = lower_to_algebra(&stmt, db.schema()).unwrap();
        for (tuple, _) in rows.iter() {
            // Every SQL-returned row shows up in the naive evaluation.
            let naive = naive_eval(&lowered.expr, &db).unwrap();
            assert!(naive.contains(tuple) || tuple.has_null(), "{sql}: {tuple}");
        }
    }
}

#[test]
fn sql_is_null_finds_codd_nulls_injected_by_generator() {
    let db = TpchGenerator::new(TpchConfig {
        null_rate: 0.3,
        seed: 11,
        ..TpchConfig::default()
    })
    .generate();
    let stmt = sql_parse("SELECT orderkey FROM Orders WHERE custkey IS NULL").unwrap();
    let rows = sql_execute(&stmt, &db).unwrap();
    // The generator injects nulls at a 30% rate into 90 orders; some must be
    // caught, and every returned order key is a constant.
    assert!(!rows.is_empty());
    assert!(rows.distinct().all(|t| t.all_const()));
}

#[test]
fn correlated_not_exists_against_generated_data_runs() {
    let db = TpchGenerator::new(TpchConfig {
        customers: 10,
        null_rate: 0.1,
        seed: 3,
        ..TpchConfig::default()
    })
    .generate();
    let stmt = sql_parse(
        "SELECT name FROM Customer C WHERE NOT EXISTS \
         (SELECT * FROM Orders O WHERE O.custkey = C.custkey)",
    )
    .unwrap();
    let rows = sql_execute(&stmt, &db).unwrap();
    // Every customer has orders, but some order.custkey values are null, so
    // the correlated comparison can be unknown; the query must still run
    // and return only constants.
    assert!(rows.distinct().all(|t| t.all_const()));
}
