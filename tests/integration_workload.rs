//! Integration tests pinning down the concrete numbers shown by the
//! examples and the experiment harness, so that the narrative in the
//! README/examples cannot silently drift from what the library computes.

use certa::prelude::*;

/// The quickstart example's library database and its headline numbers.
#[test]
fn quickstart_scenario_numbers() {
    let db = database_from_literal([
        (
            "Books",
            vec!["book", "title"],
            vec![
                tup!["b1", "Incomplete Information"],
                tup!["b2", "Three-Valued Logic"],
                tup!["b3", "Certain Answers"],
            ],
        ),
        (
            "Loans",
            vec!["reader", "book"],
            vec![tup!["alice", "b1"], tup!["bob", Value::null(0)]],
        ),
    ]);
    let available = RaExpr::rel("Books")
        .project(vec![0])
        .difference(RaExpr::rel("Loans").project(vec![1]));

    let naive = naive_eval(&available, &db).unwrap();
    assert_eq!(naive, Relation::from_tuples(vec![tup!["b2"], tup!["b3"]]));
    assert!(cert_with_nulls(&available, &db).unwrap().is_empty());
    let plus = q_plus(&available, db.schema()).unwrap();
    assert!(eval(&plus, &db).unwrap().is_empty());
    let question = q_question(&available, db.schema()).unwrap();
    assert_eq!(eval(&question, &db).unwrap(), naive);

    // µ_10: b1 is on loan for sure, b2/b3 are available in 9 of 10 worlds.
    let mu_b1 = mu_k(&available, &db, &tup!["b1"], 10).unwrap();
    let mu_b2 = mu_k(&available, &db, &tup!["b2"], 10).unwrap();
    assert_eq!((mu_b1.numerator, mu_b1.denominator), (0, 10));
    assert_eq!((mu_b2.numerator, mu_b2.denominator), (9, 10));

    // SQL's NOT IN returns nothing at all.
    let stmt =
        sql_parse("SELECT book FROM Books WHERE book NOT IN (SELECT book FROM Loans)").unwrap();
    assert!(sql_execute(&stmt, &db).unwrap().is_empty());
}

/// The strict-containment witness used by experiment E9: only the aware
/// strategy recognises the tautological selection condition.
#[test]
fn aware_strategy_strict_containment_witness() {
    let db = database_from_literal([("S", vec!["a"], vec![tup![Value::null(0)], tup![2]])]);
    let query = RaExpr::rel("S").select(Condition::eq_const(0, 2).or(Condition::neq_const(0, 2)));
    let eager = eval_conditional(&query, &db, Strategy::Eager).unwrap();
    let aware = eval_conditional(&query, &db, Strategy::Aware).unwrap();
    assert_eq!(eager.certain().len(), 1);
    assert_eq!(aware.certain().len(), 2);
    assert!(eager.certain().is_subset_of(&aware.certain()));
    // Both are sound: the exact certain answers are {⊥, 2}.
    let exact = cert_with_nulls(&query, &db).unwrap();
    assert_eq!(exact.len(), 2);
    assert!(aware.certain().is_subset_of(&exact));
}

/// The TPC-H-like generator behaves as the scaling experiment assumes:
/// sizes scale with the target, nulls appear at the requested rate, and the
/// translatable query suite runs end-to-end through the (Q+, Q?) pipeline.
#[test]
fn tpch_workload_feeds_the_scheme_pipeline() {
    let db = TpchGenerator::new(TpchConfig::scaled_to(300, 0.05, 7)).generate();
    assert!(db.total_tuples() > 150 && db.total_tuples() < 600);
    assert!(!db.is_complete());
    for query in TpchGenerator::translatable_queries() {
        let plus = q_plus(&query.expr, db.schema()).unwrap();
        let question = q_question(&query.expr, db.schema()).unwrap();
        let certain = eval(&plus, &db).unwrap();
        let possible = eval(&question, &db).unwrap();
        assert!(certain.is_subset_of(&possible), "{}: Q+ ⊄ Q?", query.name);
        // The Q+ answers also sit inside the naive evaluation (they are
        // almost certainly true, so in particular naive answers).
        let naive = naive_eval(&query.expr, &db).unwrap();
        assert!(certain.is_subset_of(&naive), "{}: Q+ ⊄ naive", query.name);
    }
}

/// Answer-quality bookkeeping used by experiment E4, on a hand-checked
/// instance: the tautology query's certain answers include the null tuple,
/// which Q+ misses — precision 1, recall 1/2.
#[test]
fn tautology_query_recall_loss_is_exactly_one_half() {
    let db = database_from_literal([("S", vec!["a"], vec![tup![Value::null(0)], tup![2]])]);
    let query = RaExpr::rel("S").select(Condition::eq_const(0, 2).or(Condition::neq_const(0, 2)));
    let plus = eval(&q_plus(&query, db.schema()).unwrap(), &db).unwrap();
    let exact = cert_with_nulls(&query, &db).unwrap();
    let quality = AnswerQuality::compare(&plus, &exact);
    assert_eq!(quality.precision(), 1.0);
    assert_eq!(quality.recall(), 0.5);
    assert_eq!(quality.false_negatives, 1);
    assert!(quality.has_correctness_guarantee());
}
