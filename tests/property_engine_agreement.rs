//! Property tests for the annotation-generic physical engine: on randomly
//! generated expressions and databases with marked nulls, the engine's
//! three instantiations must agree with the seed's recursive interpreters,
//! which are kept in `certa::algebra::reference` (set/bag) and
//! `certa::ctables::eval::eval_conditional_reference` (conditional) as
//! oracles.
//!
//! Sets and bags are compared for exact equality of results; conditional
//! evaluation is compared on the certain (`Eval_t`) and possible (`Eval_p`)
//! answer sets for **all four** grounding strategies — the engine prunes
//! rows whose condition is unsatisfiable-by-syntax earlier than the oracle,
//! so raw c-tables may differ while the semantics may not.

use certa::algebra::reference::{eval_bag_reference, eval_set_reference};
use certa::ctables::eval::eval_conditional_reference;
use certa::prelude::*;
use rand::prelude::*;

const CASES: u64 = 120;

/// A database over a schema with join-friendly shapes and repeated nulls.
fn gen_database(rng: &mut StdRng) -> Database {
    let mut r: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(0usize..6) {
        r.push(Tuple::new((0..2).map(|_| gen_value(rng))));
    }
    let mut s: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(0usize..5) {
        s.push(Tuple::new([gen_value(rng)]));
    }
    database_from_literal([("R", vec!["a", "b"], r), ("S", vec!["c"], s)])
}

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.3) {
        Value::null(rng.gen_range(0u32..3))
    } else {
        Value::int(rng.gen_range(0i64..4))
    }
}

fn gen_query(rng: &mut StdRng, schema: &Schema, allow_difference: bool) -> RaExpr {
    random_query(
        schema,
        &RandomQueryConfig {
            max_depth: 3,
            allow_difference,
            allow_disequality: true,
            seed: rng.gen_range(0u64..1_000_000),
        },
    )
}

/// Set evaluation through the engine equals the seed interpreter exactly.
#[test]
fn set_engine_agrees_with_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema(), true);
        let fast = eval(&query, &db).unwrap();
        let slow = eval_set_reference(&query, &db).unwrap();
        assert_eq!(fast, slow, "seed {seed}: query {query} on db {db}");
    }
}

/// Bag evaluation through the engine equals the seed interpreter exactly
/// (same distinct tuples *and* the same multiplicities).
#[test]
fn bag_engine_agrees_with_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema(), true);
        let bags = db.to_bags();
        let fast = certa::algebra::bag_eval::eval_bag(&query, &bags).unwrap();
        let slow = eval_bag_reference(&query, &bags).unwrap();
        assert_eq!(fast, slow, "seed {seed}: query {query} on db {db}");
    }
}

/// Conditional evaluation through the engine produces the same certain and
/// possible answers as the seed interpreter, for every strategy.
#[test]
fn conditional_engine_agrees_with_reference_on_all_strategies() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema(), true);
        for strategy in Strategy::ALL {
            let fast = eval_conditional(&query, &db, strategy).unwrap();
            let slow = eval_conditional_reference(&query, &db, strategy).unwrap();
            assert_eq!(
                fast.certain(),
                slow.certain(),
                "seed {seed} {strategy:?}: certain answers of {query} on db {db}"
            );
            assert_eq!(
                fast.possible(),
                slow.possible(),
                "seed {seed} {strategy:?}: possible answers of {query} on db {db}"
            );
        }
    }
}

/// Join-heavy shapes (the hash-join fast path) against the oracles, with
/// join keys that mix constants and repeated nulls on both sides.
#[test]
fn hash_join_path_agrees_on_null_heavy_keys() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        // R ⋈ S on b = c, optionally with a residual filter and projection.
        let mut query = RaExpr::rel("R").join_on(RaExpr::rel("S"), &[(1, 0)], 2);
        if rng.gen_bool(0.5) {
            query = query.select(Condition::neq_const(0, rng.gen_range(0i64..4)));
        }
        if rng.gen_bool(0.5) {
            query = query.project(vec![0, 2]);
        }
        let fast = eval(&query, &db).unwrap();
        let slow = eval_set_reference(&query, &db).unwrap();
        assert_eq!(fast, slow, "seed {seed}: set join on db {db}");
        for strategy in Strategy::ALL {
            let fast = eval_conditional(&query, &db, strategy).unwrap();
            let slow = eval_conditional_reference(&query, &db, strategy).unwrap();
            assert_eq!(
                fast.certain(),
                slow.certain(),
                "seed {seed} {strategy:?}: certain join answers on db {db}"
            );
            assert_eq!(
                fast.possible(),
                slow.possible(),
                "seed {seed} {strategy:?}: possible join answers on db {db}"
            );
        }
    }
}

/// Intersection is absent from `random_query`'s operator repertoire, so it
/// gets a dedicated sweep: random same-arity operands combined with `∩`,
/// plus the fixed repro that once exposed a divergence — a repeated-null
/// tuple intersected with a non-unifiable constant tuple, whose matching
/// condition (`⊥₀ = 1 ∧ ⊥₀ = 2`) is unsatisfiable but grounds eagerly to
/// `u`, so the oracle keeps the row in `Eval_p`.
#[test]
fn intersect_agrees_with_reference() {
    let repro = database_from_literal([
        (
            "R",
            vec!["a", "b"],
            vec![Tuple::new([Value::null(0), Value::null(0)])],
        ),
        (
            "T",
            vec!["a", "b"],
            vec![Tuple::new([Value::int(1), Value::int(2)])],
        ),
    ]);
    let q = RaExpr::rel("R").intersect(RaExpr::rel("T"));
    for strategy in Strategy::ALL {
        let fast = eval_conditional(&q, &repro, strategy).unwrap();
        let slow = eval_conditional_reference(&q, &repro, strategy).unwrap();
        assert_eq!(
            fast.certain(),
            slow.certain(),
            "{strategy:?}: repro certain"
        );
        assert_eq!(
            fast.possible(),
            slow.possible(),
            "{strategy:?}: repro possible"
        );
    }
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        // Same-arity operands: project both sides onto one column.
        let left = gen_query(&mut rng, db.schema(), false).project(vec![0]);
        let right = if rng.gen_bool(0.5) {
            RaExpr::rel("S")
        } else {
            gen_query(&mut rng, db.schema(), false).project(vec![0])
        };
        let query = left.intersect(right);
        let fast_set = eval(&query, &db).unwrap();
        let slow_set = eval_set_reference(&query, &db).unwrap();
        assert_eq!(fast_set, slow_set, "seed {seed}: set ∩ on db {db}");
        let bags = db.to_bags();
        assert_eq!(
            certa::algebra::bag_eval::eval_bag(&query, &bags).unwrap(),
            eval_bag_reference(&query, &bags).unwrap(),
            "seed {seed}: bag ∩ on db {db}"
        );
        for strategy in Strategy::ALL {
            let fast = eval_conditional(&query, &db, strategy).unwrap();
            let slow = eval_conditional_reference(&query, &db, strategy).unwrap();
            assert_eq!(
                fast.certain(),
                slow.certain(),
                "seed {seed} {strategy:?}: certain ∩ answers on db {db}"
            );
            assert_eq!(
                fast.possible(),
                slow.possible(),
                "seed {seed} {strategy:?}: possible ∩ answers on db {db}"
            );
        }
    }
}

/// The three instantiations are mutually consistent where the paper says
/// they must be: on duplicate-free databases, set evaluation equals bag
/// evaluation + DISTINCT, and for positive queries the eager strategy's
/// certain answers are contained in the set answer.
#[test]
fn cross_semantics_consistency() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema(), false);
        let set_out = eval(&query, &db).unwrap();
        let bag_out = certa::algebra::bag_eval::eval_bag(&query, &db.to_bags()).unwrap();
        assert_eq!(bag_out.to_set(), set_out, "seed {seed}: query {query}");
        let eager = eval_conditional(&query, &db, Strategy::Eager).unwrap();
        assert!(
            eager.certain().is_subset_of(&set_out),
            "seed {seed}: Eval_t ⊆ naive-set evaluation for positive {query}"
        );
    }
}
