//! Deterministic fault-injection property tests (PR 8).
//!
//! With the `fault-injection` feature, every `faultpoint!` site in the
//! backends fires from a seeded schedule: as a typed
//! `GovernorError::InjectedFault` everywhere, and as an injected *panic*
//! at `worker:`-prefixed sites (which must be absorbed by `catch_unwind`
//! isolation and re-surface as `GovernorError::WorkerPanicked`).
//!
//! The claims, across ~200 seeded schedules mixed with governed budgets:
//!
//! * a faulted execution never panics out of the pipeline and never
//!   aborts the process — it refuses, degrades, falls back to another
//!   exact backend, or (rarely) survives untouched;
//! * whatever the faults did, an `Exact` verdict is bit-identical to a
//!   fault-free scratch oracle — injected faults never corrupt answers;
//! * disarming the schedule fully heals the pipeline: the same warm
//!   instance then reproduces the oracle, so no cache entry was poisoned
//!   by a faulted run.
//!
//! The schedule is process-global (worker threads must see it), so this
//! binary keeps everything in one `#[test]` — `cargo test` runs other
//! binaries in separate processes and is unaffected.
//!
//! Without the feature this file compiles to an empty test binary.
#![cfg(feature = "fault-injection")]

use certa::algebra::governor::{arm_faults, disarm_faults};
use certa::prelude::*;
use rand::prelude::*;
use std::sync::Mutex;
use std::time::Duration;

/// The fault schedule is process-global and the harness runs `#[test]`s
/// concurrently: serialize every test that arms it.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn db_config(seed: u64) -> RandomDbConfig {
    RandomDbConfig {
        relations: vec![
            ("R".to_string(), 2),
            ("S".to_string(), 1),
            ("T".to_string(), 3),
        ],
        tuples_per_relation: 4,
        domain_size: 4,
        null_count: 3,
        null_rate: 0.3,
        seed,
    }
}

/// Degraded answers must stay sound against the fault-free oracle.
fn assert_degraded_sound(degraded: &LabeledAnswers, oracle: &LabeledAnswers, context: &str) {
    let exact_certain = oracle.certain();
    for t in degraded.certain().iter() {
        assert!(
            exact_certain.contains(t),
            "{context}: degraded Certain {t} is not certain"
        );
    }
    for t in exact_certain.iter() {
        assert!(
            degraded.rows.iter().any(|(u, _)| u == t),
            "{context}: certain answer {t} vanished from the degraded rows"
        );
    }
}

#[test]
fn injected_faults_never_corrupt_answers_or_caches() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut survived = 0usize;
    let mut disrupted = 0usize;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
        let mut db = random_database(&db_config(seed));
        let sql = certa::workload::random_sql(
            db.schema(),
            &certa::workload::RandomSqlConfig {
                seed,
                ..Default::default()
            },
        );
        // Fault-free scratch oracle; skip statements the exact backends
        // cannot answer at all.
        let Ok(oracle) = Pipeline::new().execute(&sql, &db, Scheme::Exact) else {
            continue;
        };
        let mut warm = Pipeline::new();
        warm.execute(&sql, &db, Scheme::Exact).unwrap();
        // Half the runs mutate the database first, so the faulted request
        // interrupts a cache refine rather than a cold compute.
        let oracle = if rng.gen_bool(0.5) {
            let nulls: Vec<_> = db.nulls().into_iter().collect();
            if !nulls.is_empty() {
                let null = nulls[rng.gen_range(0..nulls.len())];
                assert!(db.resolve_null(null, Const::from(rng.gen_range(0i64..4))) > 0);
            }
            match Pipeline::new().execute(&sql, &db, Scheme::Exact) {
                Ok(o) => o,
                Err(_) => continue,
            }
        } else {
            oracle
        };
        // Half the runs also carry a (generous) budget, so governor
        // accounting and fault handling are exercised together.
        if rng.gen_bool(0.5) {
            warm.set_budget(Some(
                ExecBudget::new()
                    .with_deadline(Duration::from_secs(60))
                    .with_row_budget(1 << 40),
            ));
        }

        arm_faults(seed, rng.gen_range(1..6));
        let outcome = warm.execute(&sql, &db, Scheme::Exact);
        disarm_faults();

        match outcome {
            Ok(answers) => match &answers.verdict {
                Verdict::Exact => {
                    assert_eq!(
                        answers, oracle,
                        "seed {seed}: a faulted exact run differs from the oracle\n  {sql}\non\n{db}"
                    );
                    survived += 1;
                }
                Verdict::Degraded(_) => {
                    assert_degraded_sound(&answers, &oracle, &format!("seed {seed} ({sql})"));
                    disrupted += 1;
                }
                Verdict::Refused(_) => {
                    assert!(answers.rows.is_empty(), "seed {seed}: refused with rows");
                    disrupted += 1;
                }
            },
            // Only typed governor failures may escape — never a panic
            // (which would have aborted this test), never a plain error
            // invented by a half-finished operator.
            Err(e) => {
                assert!(
                    e.governor_trip().is_some(),
                    "seed {seed}: a faulted run surfaced a non-governor error: {e}"
                );
                disrupted += 1;
            }
        }

        // Disarmed, the warm pipeline must heal completely: bit-identical
        // to the fault-free oracle, proving no cache entry was poisoned.
        warm.set_budget(None);
        let healed = warm.execute(&sql, &db, Scheme::Exact).unwrap();
        assert_eq!(
            healed, oracle,
            "seed {seed}: the cache stayed poisoned after disarming faults\n  {sql}\non\n{db}"
        );
    }
    // The schedules must both hit and miss: all-quiet or all-noise means
    // the harness is not exercising the lattice.
    assert!(survived > 0, "no faulted run survived to an exact answer");
    assert!(disrupted > 0, "no fault ever disrupted a run");
}

/// The same worker fault schedule at 1, 2 and 8 workers: the morsel pool
/// must convert injected worker panics into typed errors at every width
/// (the 1-worker path has no threads to hide behind).
#[test]
fn injected_worker_panics_are_isolated_at_every_pool_width() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut tripped = 0usize;
    for seed in 200..280u64 {
        let db = random_database(&db_config(seed));
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: true,
                allow_disequality: true,
                seed,
            },
        );
        let spec = certa::certain::worlds::exact_pool(&query, &db);
        if spec.check(&db).is_err() {
            continue;
        }
        let Ok(prepared) = PreparedQuery::prepare(&query, db.schema()) else {
            continue;
        };
        let tuples: Vec<Tuple> = naive_eval(&query, &db)
            .unwrap()
            .iter()
            .take(3)
            .cloned()
            .collect();
        let Ok(reference_batch) = MaskBatch::from_prepared(&prepared, &db, &spec) else {
            continue;
        };
        let reference = reference_batch.classify(&tuples).unwrap();
        for workers in [1usize, 2, 8] {
            arm_faults(seed.wrapping_mul(31).wrapping_add(workers as u64), 2);
            let outcome =
                MaskBatch::from_prepared(&prepared, &db, &spec.clone().with_threads(workers))
                    .and_then(|batch| batch.classify(&tuples));
            disarm_faults();
            match outcome {
                Ok(statuses) => assert_eq!(
                    statuses, reference,
                    "seed {seed}: faulted mask classification diverged at {workers} workers"
                ),
                Err(e) => {
                    assert!(
                        e.governor_trip().is_some(),
                        "seed {seed}: non-governor failure at {workers} workers: {e}"
                    );
                    tripped += 1;
                }
            }
        }
    }
    assert!(tripped > 0, "no injected fault ever reached the mask layer");
}
