//! Property tests for resource-governed execution (PR 8).
//!
//! The governor threads budgets, deadlines and cooperative cancellation
//! through every backend, and the pipeline answers a trip by degrading
//! down the backend lattice (`Exact ⊐ Degraded ⊐ Refused`). The claims
//! under test, on seeded random instances:
//!
//! * **no wrong answers** — a governed execution either refuses, degrades
//!   to the sound `(Q+, Q?)` approximation, or returns answers
//!   bit-identical to an ungoverned scratch oracle. Degraded `Certain`
//!   labels are a subset of the exact certain answers, and every exact
//!   certain answer still appears among the degraded rows;
//! * **no poisoned cache** — after any governed request (including
//!   cancellations that interrupt a refine mid-flight), lifting the budget
//!   yields answers bit-identical to a cold pipeline on the same database;
//! * **worker-count invariance** — at the mask layer, governed
//!   classification at 1, 2 and 8 requested workers either agrees
//!   bit-for-bit with the ungoverned statuses or fails with a typed
//!   governor error; never a panic, never a divergent answer;
//! * **termination** — the acceptance instance (a 2²⁰-world lineage
//!   dispatch) under a 10 ms deadline comes back `Degraded`/`Refused`
//!   promptly instead of hanging or aborting.
//!
//! The injected-fault half of the harness lives in
//! `property_fault_injection.rs` (its schedule is process-global, so it
//! gets a test binary of its own), behind the `fault-injection` feature.

use certa::certain::{CertainError, MaskBatch};
use certa::prelude::*;
use rand::prelude::*;
use std::time::{Duration, Instant};

const CASES: u64 = 200;

/// Uniform pick from a slice (the vendored `rand` has no `SliceRandom`).
fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

fn db_config(seed: u64) -> RandomDbConfig {
    RandomDbConfig {
        relations: vec![
            ("R".to_string(), 2),
            ("S".to_string(), 1),
            ("T".to_string(), 3),
        ],
        tuples_per_relation: 4,
        domain_size: 4,
        null_count: 3,
        null_rate: 0.3,
        seed,
    }
}

/// A seeded budget mixing the trip dimensions: sometimes an already-spent
/// deadline, sometimes a tiny row/arena/node budget, sometimes a raised
/// cancel token, sometimes several at once. Roughly a third of the draws
/// are generous enough that the exact backends pass untripped.
fn gen_budget(rng: &mut StdRng) -> (ExecBudget, bool) {
    let mut budget = ExecBudget::new();
    let mut cancelled = false;
    match rng.gen_range(0u32..6) {
        0 => budget = budget.with_deadline(Duration::ZERO),
        1 => budget = budget.with_row_budget(rng.gen_range(0u64..8)),
        2 => budget = budget.with_arena_word_budget(rng.gen_range(0u64..4)),
        3 => budget = budget.with_node_budget(rng.gen_range(0u64..3)),
        4 => {
            let token = CancelToken::new();
            token.cancel();
            budget = budget.with_cancel_token(token);
            cancelled = true;
        }
        _ => {
            // Generous limits: the run should stay exact under them.
            budget = budget
                .with_deadline(Duration::from_secs(60))
                .with_row_budget(1 << 40)
                .with_node_budget(1 << 40);
        }
    }
    if rng.gen_bool(0.2) {
        budget = budget.with_row_budget(rng.gen_range(0u64..8));
    }
    (budget, cancelled)
}

/// Every exact certain answer must still be visible among the degraded
/// rows (`cert ⊆ Q?`), and no degraded `Certain` may be a false positive
/// (`Q+ ⊆ cert`).
fn assert_degraded_sound(degraded: &LabeledAnswers, oracle: &LabeledAnswers, context: &str) {
    let exact_certain = oracle.certain();
    for t in degraded.certain().iter() {
        assert!(
            exact_certain.contains(t),
            "{context}: degraded Certain {t} is not certain"
        );
    }
    for t in exact_certain.iter() {
        assert!(
            degraded.rows.iter().any(|(u, _)| u == t),
            "{context}: certain answer {t} vanished from the degraded rows"
        );
    }
}

#[test]
fn governed_pipeline_runs_never_yield_wrong_answers_or_poisoned_caches() {
    let mut exact = 0usize;
    let mut degraded = 0usize;
    let mut refused = 0usize;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x60D5);
        let mut db = random_database(&db_config(seed));
        let sql = certa::workload::random_sql(
            db.schema(),
            &certa::workload::RandomSqlConfig {
                seed,
                ..Default::default()
            },
        );
        // The ungoverned scratch oracle; skip statements the exact
        // backends cannot answer at all.
        let Ok(oracle) = Pipeline::new().execute(&sql, &db, Scheme::Exact) else {
            continue;
        };
        let mut warm = Pipeline::new();
        warm.execute(&sql, &db, Scheme::Exact).unwrap();
        // Half the runs mutate the database first so the governed request
        // lands on the answer cache's refine path and the trip interrupts
        // a refinement mid-flight.
        let oracle = if rng.gen_bool(0.5) {
            let nulls: Vec<_> = db.nulls().into_iter().collect();
            if let Some(&null) = pick(&mut rng, &nulls) {
                assert!(db.resolve_null(null, Const::from(rng.gen_range(0i64..4))) > 0);
            }
            match Pipeline::new().execute(&sql, &db, Scheme::Exact) {
                Ok(o) => o,
                Err(_) => continue,
            }
        } else {
            oracle
        };

        let (budget, cancelled) = gen_budget(&mut rng);
        warm.set_budget(Some(budget));
        let governed = warm.execute(&sql, &db, Scheme::Exact).unwrap_or_else(|e| {
            panic!("seed {seed}: governed run errored: {e}\n  {sql}\non\n{db}")
        });
        match &governed.verdict {
            Verdict::Exact => {
                assert!(!cancelled, "seed {seed}: a cancelled run claimed exactness");
                assert_eq!(
                    governed, oracle,
                    "seed {seed}: governed exact answers differ from the oracle\n  {sql}\non\n{db}"
                );
                exact += 1;
            }
            Verdict::Degraded(_) => {
                assert_degraded_sound(&governed, &oracle, &format!("seed {seed} ({sql})"));
                degraded += 1;
            }
            Verdict::Refused(_) => {
                assert!(governed.rows.is_empty(), "seed {seed}: refused with rows");
                refused += 1;
            }
        }

        // No poisoned cache: lifting the budget must reproduce the cold
        // pipeline bit for bit, whatever the governed run did.
        warm.set_budget(None);
        let after = warm.execute(&sql, &db, Scheme::Exact).unwrap();
        assert_eq!(
            after, oracle,
            "seed {seed}: the cache was poisoned by a governed run\n  {sql}\non\n{db}"
        );
    }
    // The workload must actually exercise the whole verdict lattice.
    assert!(exact > 0, "no governed run stayed exact");
    assert!(degraded > 0, "no governed run degraded");
    assert!(refused > 0, "no governed run refused");
}

#[test]
fn governed_mask_classification_is_worker_invariant_or_typed() {
    let mut governed_ok = 0usize;
    let mut tripped = 0usize;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5CA);
        let db = random_database(&db_config(seed));
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: true,
                allow_disequality: true,
                seed,
            },
        );
        let spec = certa::certain::worlds::exact_pool(&query, &db);
        if spec.check(&db).is_err() {
            continue;
        }
        let Ok(prepared) = PreparedQuery::prepare(&query, db.schema()) else {
            continue;
        };
        let tuples: Vec<Tuple> = naive_eval(&query, &db)
            .unwrap()
            .iter()
            .take(3)
            .cloned()
            .collect();
        let Ok(reference_batch) = MaskBatch::from_prepared(&prepared, &db, &spec) else {
            continue;
        };
        let reference = reference_batch.classify(&tuples).unwrap();
        let (budget, _) = gen_budget(&mut rng);
        let governor = Governor::arm(&budget);
        for workers in [1usize, 2, 8] {
            let outcome = certa::algebra::governor::with_governor(&governor, || {
                MaskBatch::from_prepared(&prepared, &db, &spec.clone().with_threads(workers))
                    .and_then(|batch| batch.classify(&tuples))
            });
            match outcome {
                Ok(statuses) => {
                    assert_eq!(
                        statuses, reference,
                        "seed {seed}: governed mask classification diverged at {workers} workers"
                    );
                    governed_ok += 1;
                }
                Err(e) => {
                    assert!(
                        matches!(&e, CertainError::Governor(_)) || e.governor_trip().is_some(),
                        "seed {seed}: non-governor failure at {workers} workers: {e}"
                    );
                    tripped += 1;
                }
            }
        }
    }
    assert!(governed_ok > 0, "no governed mask run completed");
    assert!(tripped > 0, "no governed mask run tripped");
}

/// The acceptance instance: 64 marked nulls over the exact pool span far
/// more than 2²⁰ possible worlds, which dispatches to the lineage
/// backend. The instance is sized so even a release build needs ~100 ms
/// ungoverned, so a 10 ms budget must come back `Degraded`/`Refused` —
/// promptly, not by hanging or aborting.
#[test]
fn acceptance_two_to_the_twenty_worlds_under_a_ten_ms_deadline() {
    let mut rows: Vec<Tuple> = Vec::new();
    for i in 0..4000u32 {
        rows.push(tup![Value::null(i % 64)]);
    }
    let db = database_from_literal([
        ("R", vec!["a"], rows),
        ("S", vec!["a"], vec![tup![0], tup![1]]),
    ]);
    let sql = "SELECT a FROM R WHERE a <> 1";
    let mut p = Pipeline::new();
    let explain = p.explain(sql, &db).unwrap();
    assert!(
        explain.worlds >= 1 << 20,
        "the instance must span at least 2^20 worlds, got {}",
        explain.worlds
    );
    assert_eq!(explain.backend.backend, Backend::Lineage);

    p.set_budget(Some(
        ExecBudget::new().with_deadline(Duration::from_millis(10)),
    ));
    // Take the faster of two attempts so one scheduler hiccup cannot fail
    // the bound; both must terminate with a non-exact verdict.
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let start = Instant::now();
        let out = p.execute(sql, &db, Scheme::Exact).unwrap();
        let elapsed = start.elapsed();
        assert!(
            !out.verdict.is_exact(),
            "a 10ms deadline cannot cover this instance, got {}",
            out.verdict
        );
        if let Verdict::Degraded(_) = out.verdict {
            // The approximation is sound even here: nothing is certain
            // (every null could be 1), everything is possible.
            assert!(out.certain().is_empty());
        }
        best = best.min(elapsed);
    }
    assert!(
        best <= Duration::from_millis(20),
        "degradation took {best:?}, more than 2x the 10ms deadline"
    );
}
