//! Property tests for incremental maintenance of certain answers.
//!
//! PR 7 teaches the exact machinery to survive updates: null resolutions
//! become world-space *restrictions* over the columnar stripe masks,
//! monotone inserts become semi-naive *delta merges*, and the pipeline's
//! answer cache decides serve / refine / recompute per epoch. Every one of
//! those shortcuts claims bit-identical results to throwing the state away
//! and recomputing — this suite checks that claim on seeded random
//! update sequences, at two layers:
//!
//! * **mask layer** — a [`MaskBatch`] maintained through random
//!   resolve/insert sequences (the exact operations the pipeline's refine
//!   path performs) must agree with a from-scratch compile on the mutated
//!   database — classification tuple-for-tuple, µ fractions by
//!   cross-multiplication (the maintained batch counts over the restricted
//!   original space, the fresh one over the smaller space of the resolved
//!   instance) — and with the seed's replan-per-world oracles, and with
//!   the lineage backend whenever the query is inside its fragment. The
//!   maintained batches are compiled at 1, 2 and 8 requested workers and
//!   must stay bit-identical across the sweep after every update.
//! * **pipeline layer** — a warm [`Pipeline`] driven through random
//!   insert/delete/resolve sequences (including the resolve-then-delete
//!   interleavings of the PR-6 arena-generation bug class) must return
//!   exactly the answers of a cold pipeline recomputing from scratch after
//!   every single mutation, and must actually exercise all three decision
//!   outcomes (serve, refine, recompute) across the workload.
//!
//! Acceptance: zero disagreements, with every exact backend and both
//! layers exercised.

use certa::certain::cert::classify_candidates_lineage;
use certa::certain::worlds::exact_pool;
use certa::certain::{reference, CertainError, MaskBatch};
use certa::prelude::*;
use rand::prelude::*;

const MASK_CASES: u64 = 150;
const PIPELINE_CASES: u64 = 120;

/// Uniform pick from a slice (the vendored `rand` has no `SliceRandom`).
fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

/// The join-friendly, repeated-null instance shape shared with the mask
/// and lineage agreement suites.
fn gen_database(rng: &mut StdRng) -> Database {
    let mut r: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..5) {
        r.push(Tuple::new((0..2).map(|_| gen_value(rng))));
    }
    let mut s: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        s.push(Tuple::new([gen_value(rng)]));
    }
    let mut t: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        t.push(Tuple::new([
            Value::int(rng.gen_range(0i64..3)),
            Value::int(rng.gen_range(0i64..3)),
        ]));
    }
    database_from_literal([
        ("R", vec!["a", "b"], r),
        ("S", vec!["c"], s),
        ("T", vec!["d", "e"], t),
    ])
}

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.3) {
        Value::null(rng.gen_range(0u32..2))
    } else {
        Value::int(rng.gen_range(0i64..3))
    }
}

fn gen_query(rng: &mut StdRng, schema: &Schema) -> RaExpr {
    random_query(
        schema,
        &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed: rng.gen_range(0u64..1_000_000),
        },
    )
}

/// Candidate tuples: a few naïve answers over the *mutated* database plus
/// a constant tuple that typically is an answer nowhere.
fn candidates_for(query: &RaExpr, db: &Database) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = naive_eval(query, db)
        .unwrap()
        .iter()
        .take(3)
        .cloned()
        .collect();
    let arity = query.arity(db.schema()).unwrap();
    out.push(Tuple::new((0..arity).map(|_| Value::int(99))));
    out
}

/// One eligible update applied both to the database and to every
/// maintained batch, mirroring the pipeline's refine path. Returns `false`
/// when the drawn update is not incrementally maintainable (so the caller
/// leaves the database untouched too, keeping batches and instance in
/// sync).
fn apply_mask_step(
    rng: &mut StdRng,
    db: &mut Database,
    batches: &mut [MaskBatch],
    prepared: &PreparedQuery,
    profile: &certa::algebra::DeltaProfile,
    spec: &certa::certain::WorldSpec,
) -> bool {
    if rng.gen_bool(0.5) {
        // Resolve: pick a live null and a pool constant; the restriction
        // must be accepted by every batch or by none.
        let nulls: Vec<_> = db.nulls().into_iter().collect();
        let Some(&null) = pick(rng, &nulls) else {
            return false;
        };
        let Some(value) = pick(rng, spec.pool()).cloned() else {
            return false;
        };
        if batches.iter().any(|b| {
            !b.can_restrict(null, &value) || b.restricted_nulls().iter().any(|(n, _)| *n == null)
        }) {
            return false;
        }
        assert!(db.resolve_null(null, value.clone()) > 0);
        for b in batches.iter_mut() {
            assert!(b.restrict(null, &value), "restrict ⊥{null} := {value}");
        }
        true
    } else {
        // Insert: a small delta of tuples drawing constants from the pool
        // (the pipeline's own eligibility gate) and, occasionally, an
        // indexed unrestricted null. Relations the plan never scans take
        // the insert without any batch work; relations it scans once (in a
        // monotone plan) take a semi-naive delta merge; anything else is
        // not incrementally maintainable.
        let relation = *pick(rng, &["R", "S", "T"]).unwrap();
        let eligible = profile.ignores(relation) || profile.insert_delta_ok(relation);
        if !eligible {
            return false;
        }
        let arity = db.schema().relation(relation).unwrap().arity();
        let pinned: Vec<u32> = batches[0]
            .restricted_nulls()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        let free_nulls: Vec<u32> = db
            .nulls()
            .into_iter()
            .filter(|n| !pinned.contains(n) && batches.iter().all(|b| b.indexes_null(*n)))
            .collect();
        let tuples: Vec<Tuple> = (0..rng.gen_range(1usize..3))
            .map(|_| {
                Tuple::new((0..arity).map(|_| {
                    if !free_nulls.is_empty() && rng.gen_bool(0.2) {
                        Value::null(*pick(rng, &free_nulls).unwrap())
                    } else {
                        Value::from(pick(rng, spec.pool()).cloned().unwrap())
                    }
                }))
            })
            .collect();
        db.insert_all(relation, tuples.clone()).unwrap();
        if profile.ignores(relation) {
            return true;
        }
        for b in batches.iter_mut() {
            b.apply_insert_delta(prepared, db, relation, &tuples)
                .unwrap_or_else(|e| panic!("delta merge into {relation} failed: {e}"));
        }
        true
    }
}

#[test]
fn maintained_mask_batches_agree_with_scratch_oracles() {
    let mut maintained_updates = 0usize;
    let mut lineage_checked = 0usize;
    for seed in 0..MASK_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let db0 = gen_database(&mut rng);
        let query = gen_query(&mut rng, db0.schema());
        let spec = exact_pool(&query, &db0);
        let prepared = PreparedQuery::prepare(&query, db0.schema()).unwrap();
        let profile = certa::algebra::delta_profile(prepared.plan());

        // One maintained batch per requested worker count: the whole
        // update sequence replays identically on each.
        let mut batches: Vec<MaskBatch> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                MaskBatch::from_prepared(&prepared, &db0, &spec.clone().with_threads(w)).unwrap()
            })
            .collect();

        let mut db = db0.clone();
        for _ in 0..rng.gen_range(1usize..4) {
            if apply_mask_step(&mut rng, &mut db, &mut batches, &prepared, &profile, &spec) {
                maintained_updates += 1;
            }
        }

        let tuples = candidates_for(&query, &db);

        // Worker-count invariance of the *maintained* state.
        let statuses = batches[0].classify(&tuples).unwrap();
        for (w, b) in [1usize, 2, 8].iter().zip(&batches) {
            assert_eq!(
                b.classify(&tuples).unwrap(),
                statuses,
                "seed {seed}: maintained classification differs at {w} workers for {query} on {db}"
            );
        }

        // Scratch mask oracle: a fresh compile on the mutated database
        // over the *same* pool. Statuses agree outright; µ fractions agree
        // by cross-multiplication (pinned levels contribute equal factors
        // to numerator and denominator).
        let fresh = MaskBatch::from_prepared(&prepared, &db, &spec).unwrap();
        assert_eq!(
            fresh.classify(&tuples).unwrap(),
            statuses,
            "seed {seed}: maintained vs scratch classification for {query} on {db}"
        );
        for t in &tuples {
            let (n1, d1) = batches[0].mu_counts(t);
            let (n2, d2) = fresh.mu_counts(t);
            assert_eq!(
                n1 * d2,
                n2 * d1,
                "seed {seed}: maintained vs scratch µ of {t} for {query} on {db}"
            );
        }

        // Seed oracles: the replan-per-world predicates on the mutated
        // database.
        for (t, s) in tuples.iter().zip(&statuses) {
            assert_eq!(
                s.certain,
                reference::is_certain_answer_seed(&query, &db, t).unwrap(),
                "seed {seed}: maintained vs seed certainty of {t} for {query} on {db}"
            );
            assert_eq!(
                !s.possible,
                reference::is_certainly_false_seed(&query, &db, t).unwrap(),
                "seed {seed}: maintained vs seed certain-falsity of {t} for {query} on {db}"
            );
        }

        // Lineage oracle, where the fragment allows: diagrams compiled
        // from scratch on the mutated database over the same pool.
        match classify_candidates_lineage(&query, &db, &spec, &tuples) {
            Ok(sym) => {
                for (i, t) in tuples.iter().enumerate() {
                    assert_eq!(
                        (statuses[i].certain, statuses[i].possible),
                        (sym[i].certain, sym[i].possible),
                        "seed {seed}: maintained vs lineage classification of {t} for {query} on {db}"
                    );
                }
                lineage_checked += 1;
            }
            Err(CertainError::Lineage(e)) if e.is_unsupported() => {}
            Err(e) => panic!("seed {seed}: lineage failed on {query}: {e}"),
        }
    }
    assert!(
        maintained_updates >= 100,
        "only {maintained_updates} incremental updates were exercised"
    );
    assert!(
        lineage_checked >= 30,
        "only {lineage_checked} instances were cross-checked against lineage"
    );
}

/// A null-heavy random database for the pipeline-layer sequences.
fn db_config(seed: u64) -> RandomDbConfig {
    RandomDbConfig {
        relations: vec![
            ("R".to_string(), 2),
            ("S".to_string(), 1),
            ("T".to_string(), 3),
        ],
        tuples_per_relation: 4,
        domain_size: 4,
        null_count: 3,
        null_rate: 0.3,
        seed,
    }
}

/// One random mutation through the public update API. Unlike the mask
/// layer this draws from the *full* update language — deletes, structural
/// no-ops, out-of-pool resolutions — because the pipeline must fall back
/// to recomputation wherever refinement is unsound.
fn apply_pipeline_step(rng: &mut StdRng, db: &mut Database) {
    match rng.gen_range(0u32..4) {
        0 => {
            // Insert a random (possibly null-carrying, possibly
            // out-of-universe) tuple.
            let relation = *pick(rng, &["R", "S", "T"]).unwrap();
            let arity = db.schema().relation(relation).unwrap().arity();
            let tuple = Tuple::new((0..arity).map(|_| {
                if rng.gen_bool(0.25) {
                    Value::null(rng.gen_range(0u32..4))
                } else {
                    Value::int(rng.gen_range(0i64..5))
                }
            }));
            db.insert(relation, tuple).unwrap();
        }
        1 => {
            // Delete a random existing tuple.
            let relation = *pick(rng, &["R", "S", "T"]).unwrap();
            let existing: Vec<Tuple> = db.relation(relation).unwrap().iter().cloned().collect();
            if let Some(t) = pick(rng, &existing) {
                assert!(db.delete(relation, t).unwrap());
            }
        }
        _ => {
            // Resolve a live null — usually to a small in-domain constant,
            // sometimes to one outside the cached pool.
            let nulls: Vec<_> = db.nulls().into_iter().collect();
            if let Some(&null) = pick(rng, &nulls) {
                let value = if rng.gen_bool(0.8) {
                    Const::from(rng.gen_range(0i64..4))
                } else {
                    Const::from(99i64)
                };
                assert!(db.resolve_null(null, value) > 0);
            }
        }
    }
}

#[test]
fn warm_pipeline_sequences_match_cold_recomputation() {
    let mut served = 0usize;
    let mut refined = 0usize;
    let mut recomputed = 0usize;
    let mut steps_checked = 0usize;
    for seed in 0..PIPELINE_CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1AC0);
        let mut db = random_database(&db_config(seed));
        let sql = certa::workload::random_sql(
            db.schema(),
            &certa::workload::RandomSqlConfig {
                seed,
                ..Default::default()
            },
        );
        let mut warm = Pipeline::new();
        // Some random SQL has no plain-algebra lowering; those statements
        // never reach the exact backends — skip them.
        if warm.execute(&sql, &db, Scheme::Exact).is_err() {
            continue;
        }
        for _ in 0..rng.gen_range(2usize..6) {
            apply_pipeline_step(&mut rng, &mut db);
            let maintained = warm.execute(&sql, &db, Scheme::Exact).unwrap();
            let scratch = Pipeline::new().execute(&sql, &db, Scheme::Exact).unwrap();
            assert_eq!(
                maintained, scratch,
                "seed {seed}: warm and cold answers disagree after an update\n  {sql}\non\n{db}"
            );
            // A second request at the unchanged epoch must serve the cache
            // and still agree.
            let again = warm.execute(&sql, &db, Scheme::Exact).unwrap();
            assert_eq!(
                again, maintained,
                "seed {seed}: serving changed the answers"
            );
            steps_checked += 1;
        }
        let m = warm.explain(&sql, &db).unwrap().maintenance;
        served += m.served;
        refined += m.refined;
        recomputed += m.recomputed;
    }
    assert!(
        steps_checked >= 150,
        "only {steps_checked} update steps were checked"
    );
    // The workload must actually exercise every decision of the lattice —
    // otherwise the equalities above prove nothing about refinement.
    assert!(served > 0, "no request was served from cache");
    assert!(refined > 0, "no request took the refine path");
    assert!(recomputed > 0, "no request took the recompute path");
}

#[test]
fn resolve_then_delete_interleaving_recomputes_correctly() {
    // The PR-6 bug class, end to end: refine on a resolution, then hit the
    // same cached state with a delete — the pipeline must notice that
    // refinement is unsound for deletions and rebuild, not serve stale
    // masks.
    let mut db = certa::workload::shop_database(true);
    let sql = "SELECT oid FROM Orders WHERE oid IN (SELECT oid FROM Payments)";
    let mut warm = Pipeline::new();
    warm.execute(sql, &db, Scheme::Exact).unwrap();

    assert_eq!(db.resolve_null(0, Const::from("o2")), 1);
    let after_resolve = warm.execute(sql, &db, Scheme::Exact).unwrap();
    assert_eq!(
        after_resolve,
        Pipeline::new().execute(sql, &db, Scheme::Exact).unwrap()
    );
    assert_eq!(after_resolve.certain().len(), 2); // o1 and now o2 are paid

    assert!(db.delete("Payments", &tup!["c1", "o1"]).unwrap());
    let after_delete = warm.execute(sql, &db, Scheme::Exact).unwrap();
    assert_eq!(
        after_delete,
        Pipeline::new().execute(sql, &db, Scheme::Exact).unwrap()
    );
    assert_eq!(after_delete.certain().len(), 1); // only o2 remains paid

    let m = warm.explain(sql, &db).unwrap().maintenance;
    assert_eq!(m.refined, 1, "the resolution should have refined");
    assert_eq!(m.recomputed, 2, "the delete should have recomputed");
}
