//! Property-based tests for the core invariants of the library:
//! unification, valuations, relational-algebra identities, Kleene-logic
//! laws, and the soundness of the approximation schemes on arbitrary
//! generated instances.
//!
//! The build environment has no access to crates.io, so instead of proptest
//! these properties are checked over deterministic seeded samples: each
//! generator below is driven by the workspace's offline `rand` stand-in, and
//! every case runs a fixed number of trials (64, matching the old
//! `ProptestConfig::with_cases(64)`). Failures print the seed so a case can
//! be replayed by hand.

use certa::certain::approx37;
use certa::prelude::*;
use rand::prelude::*;

const CASES: u64 = 64;

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.35) {
        Value::null(rng.gen_range(0u32..3))
    } else {
        Value::int(rng.gen_range(0i64..5))
    }
}

fn gen_tuple(rng: &mut StdRng, arity: usize) -> Tuple {
    Tuple::new((0..arity).map(|_| gen_value(rng)))
}

fn gen_valuation(rng: &mut StdRng) -> Valuation {
    let mut pairs: Vec<(u32, Const)> = Vec::new();
    for n in 0u32..3 {
        if rng.gen_bool(0.5) {
            pairs.push((n, Const::Int(rng.gen_range(0i64..5))));
        }
    }
    Valuation::from_pairs(pairs)
}

/// A small random database over a fixed 2-relation schema.
fn gen_database(rng: &mut StdRng) -> Database {
    let r: Vec<Tuple> = (0..rng.gen_range(0usize..5))
        .map(|_| gen_tuple(rng, 2))
        .collect();
    let s: Vec<Tuple> = (0..rng.gen_range(0usize..4))
        .map(|_| gen_tuple(rng, 1))
        .collect();
    database_from_literal([("R", vec!["a", "b"], r), ("S", vec!["c"], s)])
}

/// Unification is symmetric, and unifiable tuples have a witnessing
/// valuation that really equalises them.
#[test]
fn unification_symmetry_and_witness() {
    use certa::data::{unifiable, unify};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen_tuple(&mut rng, 3);
        let b = gen_tuple(&mut rng, 3);
        assert_eq!(unifiable(&a, &b), unifiable(&b, &a), "seed {seed}");
        if let Some(v) = unify(&a, &b) {
            assert_eq!(v.apply_tuple(&a), v.apply_tuple(&b), "seed {seed}");
        }
    }
}

/// A total valuation always produces a complete database, and applying
/// it twice is the same as applying it once (idempotence on the image).
#[test]
fn valuations_complete_and_idempotent() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let nulls = db.nulls();
        let pool: Vec<Const> = (0..4).map(Const::Int).collect();
        let first = certa::data::valuation::all_valuations(&nulls, &pool).next();
        if let Some(v) = first {
            let world = v.apply_database(&db);
            assert!(world.is_complete(), "seed {seed}");
            assert_eq!(v.apply_database(&world), world, "seed {seed}");
        }
    }
}

/// Kleene connectives: commutativity, associativity, De Morgan,
/// distributivity, and monotonicity in the knowledge order — exhaustive
/// over the 27 triples, so no sampling needed.
#[test]
fn kleene_laws() {
    for a in Truth3::ALL {
        for b in Truth3::ALL {
            for c in Truth3::ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.and(b.and(c)), a.and(b).and(c));
                assert_eq!(a.or(b.or(c)), a.or(b).or(c));
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
                for x in Truth3::ALL {
                    if x.knowledge_le(a) {
                        assert!(x.and(b).knowledge_le(a.and(b)));
                    }
                }
            }
        }
    }
}

/// Relational-algebra identities under set semantics: commutativity of
/// ∪ and ∩, distributivity of σ over ∪, and π ∘ π composition.
#[test]
fn algebra_identities() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let k = rng.gen_range(0i64..5);
        let r = RaExpr::rel("R");
        let s = RaExpr::rel("R").select(Condition::eq_const(0, k));
        let union_lr = eval(&r.clone().union(s.clone()), &db).unwrap();
        let union_rl = eval(&s.clone().union(r.clone()), &db).unwrap();
        assert_eq!(union_lr, union_rl, "seed {seed}");
        // σ distributes over ∪.
        let cond = Condition::eq_const(1, k);
        let lhs = eval(&r.clone().union(s.clone()).select(cond.clone()), &db).unwrap();
        let rhs = eval(
            &r.clone().select(cond.clone()).union(s.clone().select(cond)),
            &db,
        )
        .unwrap();
        assert_eq!(lhs, rhs, "seed {seed}");
        // Projecting twice is projecting once.
        let p1 = eval(&r.clone().project(vec![0, 1]).project(vec![0]), &db).unwrap();
        let p2 = eval(&r.clone().project(vec![0]), &db).unwrap();
        assert_eq!(p1, p2, "seed {seed}");
    }
}

/// Naïve evaluation commutes with valuations for queries in the positive
/// fragment: v(Qⁿᵃⁱᵛᵉ(D)) ⊆ Q(v(D)) (the preservation property behind
/// Theorem 4.4).
#[test]
fn positive_queries_preserved_under_valuations() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let v = gen_valuation(&mut rng);
        let qseed = rng.gen_range(0u64..20);
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: false,
                allow_disequality: false,
                seed: qseed,
            },
        );
        let naive = naive_eval(&query, &db).unwrap();
        // Make the valuation total on the database's nulls by filling gaps.
        let mut total = v.clone();
        for n in db.nulls() {
            if total.get(n).is_none() {
                total.assign(n, Const::Int(0));
            }
        }
        let world = total.apply_database(&db);
        let answer = eval(&query, &world).unwrap();
        assert!(
            total.apply_relation(&naive).is_subset_of(&answer),
            "seed {seed}: query {query} on db {db}"
        );
    }
}

/// Q+ is always a subset of Q? on the same database, and both collapse
/// to Q on complete databases.
#[test]
fn q_plus_subset_of_q_question() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let qseed = rng.gen_range(0u64..20);
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: true,
                allow_disequality: true,
                seed: qseed,
            },
        );
        let pair = approx37::translate(&query, db.schema()).unwrap();
        let plus = eval(&pair.q_plus, &db).unwrap();
        let question = eval(&pair.q_question, &db).unwrap();
        assert!(
            plus.is_subset_of(&question),
            "seed {seed}: query {query} on db {db}"
        );
        if db.is_complete() {
            let exact = eval(&query, &db).unwrap();
            assert_eq!(plus, exact.clone(), "seed {seed}");
            assert_eq!(question, exact, "seed {seed}");
        }
    }
}

/// The eager conditional-table strategy agrees with (Q+, Q?) on
/// arbitrary generated databases and queries (Theorem 4.9's last claim).
#[test]
fn eager_ctables_match_q_plus() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let qseed = rng.gen_range(0u64..12);
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: true,
                allow_disequality: true,
                seed: qseed,
            },
        );
        let pair = approx37::translate(&query, db.schema()).unwrap();
        let eager = eval_conditional(&query, &db, certa::ctables::Strategy::Eager).unwrap();
        assert_eq!(
            eager.certain(),
            eval(&pair.q_plus, &db).unwrap(),
            "seed {seed}: query {query}"
        );
        assert_eq!(
            eager.possible(),
            eval(&pair.q_question, &db).unwrap(),
            "seed {seed}: query {query}"
        );
    }
}

/// Bag and set evaluation agree after duplicate elimination on
/// duplicate-free inputs.
#[test]
fn bag_eval_matches_set_eval() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let qseed = rng.gen_range(0u64..15);
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: false,
                allow_disequality: true,
                seed: qseed,
            },
        );
        let set_out = eval(&query, &db).unwrap();
        let bag_out = certa::algebra::bag_eval::eval_bag(&query, &db.to_bags()).unwrap();
        assert_eq!(bag_out.to_set(), set_out, "seed {seed}: query {query}");
    }
}

/// µ_k is monotone in the sense of the 0–1 law: if a tuple is in the
/// naive answer, its measure at moderate k has positive support.
#[test]
fn mu_k_respects_naive_membership() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let query = RaExpr::rel("R").project(vec![0]);
        let naive = naive_eval(&query, &db).unwrap();
        for t in naive.iter().take(2) {
            let frac = mu_k(&query, &db, t, 12).unwrap();
            assert!(
                frac.numerator > 0,
                "seed {seed}: tuple {t} should have support"
            );
        }
    }
}
