//! Property-based tests (proptest) for the core invariants of the library:
//! unification, valuations, relational-algebra identities, Kleene-logic
//! laws, and the soundness of the approximation schemes on arbitrary
//! generated instances.

use certa::certain::approx37;
use certa::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// Strategy for values over a small constant domain with a few nulls.
fn value_strategy() -> impl PropStrategy<Value = Value> {
    prop_oneof![
        (0i64..5).prop_map(Value::int),
        (0u32..3).prop_map(Value::null),
    ]
}

fn tuple_strategy(arity: usize) -> impl PropStrategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), arity).prop_map(Tuple::from)
}

fn valuation_strategy() -> impl PropStrategy<Value = Valuation> {
    proptest::collection::btree_map(0u32..3, 0i64..5, 0..3).prop_map(|m| {
        Valuation::from_pairs(m.into_iter().map(|(n, c)| (n, Const::Int(c))))
    })
}

/// A small random database over a fixed 2-relation schema.
fn database_strategy() -> impl PropStrategy<Value = Database> {
    (
        proptest::collection::vec(tuple_strategy(2), 0..5),
        proptest::collection::vec(tuple_strategy(1), 0..4),
    )
        .prop_map(|(r, s)| {
            database_from_literal([("R", vec!["a", "b"], r), ("S", vec!["c"], s)])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unification is symmetric, and unifiable tuples have a witnessing
    /// valuation that really equalises them.
    #[test]
    fn unification_symmetry_and_witness(a in tuple_strategy(3), b in tuple_strategy(3)) {
        use certa::data::{unifiable, unify};
        prop_assert_eq!(unifiable(&a, &b), unifiable(&b, &a));
        if let Some(v) = unify(&a, &b) {
            prop_assert_eq!(v.apply_tuple(&a), v.apply_tuple(&b));
        }
    }

    /// A total valuation always produces a complete database, and applying
    /// it twice is the same as applying it once (idempotence on the image).
    #[test]
    fn valuations_complete_and_idempotent(db in database_strategy()) {
        let nulls = db.nulls();
        let pool: Vec<Const> = (0..4).map(Const::Int).collect();
        let first = certa::data::valuation::all_valuations(&nulls, &pool).next();
        if let Some(v) = first {
            let world = v.apply_database(&db);
            prop_assert!(world.is_complete());
            prop_assert_eq!(v.apply_database(&world), world);
        }
    }

    /// Kleene connectives: commutativity, associativity, De Morgan, and
    /// monotonicity in the knowledge order.
    #[test]
    fn kleene_laws(a in 0usize..3, b in 0usize..3, c in 0usize..3) {
        let (a, b, c) = (Truth3::ALL[a], Truth3::ALL[b], Truth3::ALL[c]);
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.and(b.and(c)), a.and(b).and(c));
        prop_assert_eq!(a.or(b.or(c)), a.or(b).or(c));
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
        // Knowledge monotonicity of ∧ in each argument.
        for x in Truth3::ALL {
            if x.knowledge_le(a) {
                prop_assert!(x.and(b).knowledge_le(a.and(b)));
            }
        }
    }

    /// Relational-algebra identities under set semantics: commutativity of
    /// ∪ and ∩, distributivity of σ over ∪, and π ∘ π composition.
    #[test]
    fn algebra_identities(db in database_strategy(), k in 0i64..5) {
        let r = RaExpr::rel("R");
        let s = RaExpr::rel("R").select(Condition::eq_const(0, k));
        let union_lr = eval(&r.clone().union(s.clone()), &db).unwrap();
        let union_rl = eval(&s.clone().union(r.clone()), &db).unwrap();
        prop_assert_eq!(union_lr, union_rl);
        // σ distributes over ∪.
        let cond = Condition::eq_const(1, k);
        let lhs = eval(&r.clone().union(s.clone()).select(cond.clone()), &db).unwrap();
        let rhs = eval(
            &r.clone().select(cond.clone()).union(s.clone().select(cond)),
            &db,
        )
        .unwrap();
        prop_assert_eq!(lhs, rhs);
        // Projecting twice is projecting once.
        let p1 = eval(&r.clone().project(vec![0, 1]).project(vec![0]), &db).unwrap();
        let p2 = eval(&r.clone().project(vec![0]), &db).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// Naïve evaluation commutes with valuations for queries in the positive
    /// fragment: v(Qⁿᵃⁱᵛᵉ(D)) ⊆ Q(v(D)) (the preservation property behind
    /// Theorem 4.4).
    #[test]
    fn positive_queries_preserved_under_valuations(
        db in database_strategy(),
        v in valuation_strategy(),
        qseed in 0u64..20,
    ) {
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: false,
                allow_disequality: false,
                seed: qseed,
            },
        );
        let naive = naive_eval(&query, &db).unwrap();
        // Make the valuation total on the database's nulls by filling gaps.
        let mut total = v.clone();
        for n in db.nulls() {
            if total.get(n).is_none() {
                total.assign(n, Const::Int(0));
            }
        }
        let world = total.apply_database(&db);
        let answer = eval(&query, &world).unwrap();
        prop_assert!(total.apply_relation(&naive).is_subset_of(&answer),
            "query {} on db {}", query, db);
    }

    /// Q+ is always a subset of Q? on the same database, and both collapse
    /// to Q on complete databases.
    #[test]
    fn q_plus_subset_of_q_question(db in database_strategy(), qseed in 0u64..20) {
        let query = random_query(db.schema(), &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed: qseed,
        });
        let pair = approx37::translate(&query, db.schema()).unwrap();
        let plus = eval(&pair.q_plus, &db).unwrap();
        let question = eval(&pair.q_question, &db).unwrap();
        prop_assert!(plus.is_subset_of(&question), "query {} on db {}", query, db);
        if db.is_complete() {
            let exact = eval(&query, &db).unwrap();
            prop_assert_eq!(plus, exact.clone());
            prop_assert_eq!(question, exact);
        }
    }

    /// The eager conditional-table strategy agrees with (Q+, Q?) on
    /// arbitrary generated databases and queries (Theorem 4.9's last claim).
    #[test]
    fn eager_ctables_match_q_plus(db in database_strategy(), qseed in 0u64..12) {
        let query = random_query(db.schema(), &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed: qseed,
        });
        let pair = approx37::translate(&query, db.schema()).unwrap();
        let eager = eval_conditional(&query, &db, certa::ctables::Strategy::Eager).unwrap();
        prop_assert_eq!(eager.certain(), eval(&pair.q_plus, &db).unwrap());
        prop_assert_eq!(eager.possible(), eval(&pair.q_question, &db).unwrap());
    }

    /// Bag and set evaluation agree after duplicate elimination on
    /// duplicate-free inputs.
    #[test]
    fn bag_eval_matches_set_eval(db in database_strategy(), qseed in 0u64..15) {
        let query = random_query(db.schema(), &RandomQueryConfig {
            max_depth: 2,
            allow_difference: false,
            allow_disequality: true,
            seed: qseed,
        });
        let set_out = eval(&query, &db).unwrap();
        let bag_out = certa::algebra::bag_eval::eval_bag(&query, &db.to_bags()).unwrap();
        prop_assert_eq!(bag_out.to_set(), set_out);
    }

    /// µ_k is monotone in the sense of the 0–1 law: if a tuple is in the
    /// naive answer, its measure approaches 1 (is at least 1 − |nulls|·m/k
    /// in the worst case, so for large k it is positive); if it is not, the
    /// measure at large k is below that of naive tuples.
    #[test]
    fn mu_k_respects_naive_membership(db in database_strategy()) {
        let query = RaExpr::rel("R").project(vec![0]);
        let naive = naive_eval(&query, &db).unwrap();
        for t in naive.iter().take(2) {
            let frac = mu_k(&query, &db, t, 12).unwrap();
            prop_assert!(frac.numerator > 0, "tuple {} should have support", t);
        }
    }
}
