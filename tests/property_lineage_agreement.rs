//! Property tests for the symbolic lineage backend.
//!
//! The lineage subsystem (`certa-lineage`) decides certainty, certain
//! falsity and the µ_k measure by compiling c-table conditions into
//! decision diagrams instead of enumerating possible worlds. On hundreds
//! of seeded random instances across three workloads — the Figure 1 shop
//! database, random null-heavy instances with random full-RA queries, and
//! random SQL lowered to algebra — every lineage verdict must agree
//! **exactly** with the prepared/parallel world engines *and* with the
//! seed's replan-per-world oracles, for all three result kinds:
//!
//! * the certain-answer set (`cert⊥`),
//! * the per-candidate classification (certain / possible / certainly
//!   false),
//! * the exact µ_k fractions (numerator *and* denominator),
//!
//! plus the bag multiplicity ranges on the monus-free fragment. Queries
//! outside the symbolic fragment (e.g. `IS NULL` predicates from the SQL
//! generator) must be *rejected* by the lineage backend — never silently
//! mis-answered — and are counted as skips.
//!
//! Workload sizing: 200 random-RA + 180 random-SQL + 60 bag instances +
//! the shop queries ≈ 440 seeded instances, of which well over 300 take
//! the lineage path (every skip is an explicit `Unsupported` rejection,
//! asserted bounded below).

use certa::certain::cert::{classify_candidates, classify_candidates_lineage};
use certa::certain::worlds::exact_pool;
use certa::certain::{bag_bounds, cert, prob, reference, CertainError, WorldSpec};
use certa::prelude::*;
use rand::prelude::*;

const RA_CASES: u64 = 200;
const SQL_CASES: u64 = 180;
const BAG_CASES: u64 = 60;

/// The same join-friendly, repeated-null instance shape the prepared-world
/// suite uses: small enough that exact_pool enumeration stays in the
/// hundreds, null-heavy enough that certainty is non-trivial.
fn gen_database(rng: &mut StdRng) -> Database {
    let mut r: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..5) {
        r.push(Tuple::new((0..2).map(|_| gen_value(rng))));
    }
    let mut s: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        s.push(Tuple::new([gen_value(rng)]));
    }
    let mut t: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        t.push(Tuple::new([
            Value::int(rng.gen_range(0i64..3)),
            Value::int(rng.gen_range(0i64..3)),
        ]));
    }
    database_from_literal([
        ("R", vec!["a", "b"], r),
        ("S", vec!["c"], s),
        ("T", vec!["d", "e"], t),
    ])
}

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.3) {
        Value::null(rng.gen_range(0u32..2))
    } else {
        Value::int(rng.gen_range(0i64..3))
    }
}

fn gen_query(rng: &mut StdRng, schema: &Schema) -> RaExpr {
    random_query(
        schema,
        &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed: rng.gen_range(0u64..1_000_000),
        },
    )
}

/// Candidate tuples for a query: a few naïve answers (may carry nulls)
/// plus a constant tuple that typically is an answer nowhere.
fn candidates_for(query: &RaExpr, db: &Database) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = naive_eval(query, db)
        .unwrap()
        .iter()
        .take(3)
        .cloned()
        .collect();
    let arity = query.arity(db.schema()).unwrap();
    out.push(Tuple::new((0..arity).map(|_| Value::int(99))));
    out
}

/// Assert the three backends agree on one instance: lineage vs the world
/// engines vs the seed oracles, on classification, the certain set, and
/// µ_k. Returns `false` (skip) when the query is outside the symbolic
/// fragment — in which case the lineage backend must have *said so*.
fn assert_instance_agreement(label: &str, query: &RaExpr, db: &Database) -> bool {
    let spec = exact_pool(query, db);
    let tuples = candidates_for(query, db);
    let symbolic = match classify_candidates_lineage(query, db, &spec, &tuples) {
        Ok(statuses) => statuses,
        Err(CertainError::Lineage(e)) if e.is_unsupported() => return false,
        Err(e) => panic!("{label}: lineage failed on {query}: {e}"),
    };

    // Classification: engine (prepared enumeration) and seed predicates.
    let prepared = PreparedQuery::prepare(query, db.schema()).unwrap();
    let engine = classify_candidates(&prepared, db, &spec, &tuples).unwrap();
    for ((t, sym), eng) in tuples.iter().zip(&symbolic).zip(&engine) {
        assert_eq!(
            (sym.certain, sym.possible),
            (eng.certain, eng.possible),
            "{label}: lineage vs engine classification of {t} for {query} on {db}"
        );
        assert_eq!(
            sym.certain,
            reference::is_certain_answer_seed(query, db, t).unwrap(),
            "{label}: lineage vs seed certainty of {t} for {query} on {db}"
        );
        assert_eq!(
            !sym.possible,
            reference::is_certainly_false_seed(query, db, t).unwrap(),
            "{label}: lineage vs seed certain-falsity of {t} for {query} on {db}"
        );
    }

    // The certain-answer set.
    let by_lineage = cert::cert_with_nulls_lineage_with(query, db, &spec).unwrap();
    let by_engine = cert::cert_with_nulls_with(query, db, &spec).unwrap();
    let by_seed = reference::cert_with_nulls_seed(query, db, &spec).unwrap();
    assert_eq!(
        by_lineage, by_engine,
        "{label}: lineage vs engine cert⊥ of {query} on {db}"
    );
    assert_eq!(
        by_lineage, by_seed,
        "{label}: lineage vs seed cert⊥ of {query} on {db}"
    );

    // Exact µ_k fractions, numerator and denominator.
    for k in [2usize, 4] {
        let mu_spec = WorldSpec::new(prob::canonical_pool(query, db, k));
        for t in tuples.iter().take(2) {
            let by_lineage = prob::mu_k_lineage(query, db, t, k).unwrap();
            let by_engine = prob::mu_k(query, db, t, k).unwrap();
            let (num, den) =
                reference::mu_k_conditional_seed(query, db, t, &mu_spec, |_| true).unwrap();
            assert_eq!(
                by_lineage, by_engine,
                "{label}, k = {k}: lineage vs engine µ_k of {t} for {query} on {db}"
            );
            assert_eq!(
                (by_lineage.numerator, by_lineage.denominator),
                (num as u128, den as u128),
                "{label}, k = {k}: lineage vs seed µ_k of {t} for {query} on {db}"
            );
        }
    }
    true
}

#[test]
fn random_ra_workload_agrees_on_all_three_result_kinds() {
    let mut supported = 0usize;
    for seed in 0..RA_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + 7);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        if assert_instance_agreement(&format!("ra seed {seed}"), &query, &db) {
            supported += 1;
        }
    }
    // The random-RA generator stays inside σ/π/×/∪/− with =/≠ conditions,
    // all of which the symbolic fragment covers.
    assert_eq!(
        supported, RA_CASES as usize,
        "every random-RA case must take the lineage path"
    );
}

#[test]
fn sqlgen_workload_agrees_on_all_three_result_kinds() {
    let schema_db = gen_database(&mut StdRng::seed_from_u64(1));
    let schema = schema_db.schema().clone();
    let mut supported = 0usize;
    let mut skipped = 0usize;
    for seed in 0..SQL_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131) + 17);
        let db = gen_database(&mut rng);
        let sql = certa::workload::random_sql(
            &schema,
            &certa::workload::RandomSqlConfig {
                max_tables: 2,
                max_cond_depth: 2,
                domain_size: 3,
                allow_membership: seed % 3 == 0,
                seed: rng.gen_range(0u64..1_000_000),
            },
        );
        let stmt = sql_parse(&sql).unwrap();
        // Some generated statements (e.g. `… = NULL` under NOT) have no
        // plain-algebra lowering at all; they never reach any backend.
        let Ok(lowered) = lower_to_algebra(&stmt, db.schema()) else {
            skipped += 1;
            continue;
        };
        if assert_instance_agreement(&format!("sql seed {seed} ({sql})"), &lowered.expr, &db) {
            supported += 1;
        } else {
            skipped += 1;
        }
    }
    // IS NULL predicates, membership lowerings that use syntactic
    // const(·) tests, and unlowerable statements legitimately skip; a
    // solid share must still exercise the lineage path.
    assert!(
        supported >= SQL_CASES as usize / 3,
        "too few sqlgen cases took the lineage path: {supported} supported, {skipped} skipped"
    );
}

#[test]
fn shop_workload_agrees_on_all_three_result_kinds() {
    let db = shop_database(true);
    let queries = [
        ShopQueries::unpaid_orders(),
        ShopQueries::or_tautology(),
        RaExpr::rel("Payments").project(vec![0]),
        RaExpr::rel("Customers")
            .project(vec![0])
            .difference(RaExpr::rel("Payments").project(vec![0])),
    ];
    let mut supported = 0usize;
    for (i, query) in queries.iter().enumerate() {
        if assert_instance_agreement(&format!("shop query {i}"), query, &db) {
            supported += 1;
        }
    }
    assert_eq!(supported, queries.len());
}

#[test]
fn intersection_queries_agree_across_backends() {
    // Neither random generator emits ∩ (random_query has no intersect arm
    // and the SQL lowerings never produce one), so the conditional
    // intersection reading — all-pairs symbolic matching under `t̄ = s̄`
    // conditions — gets its own differential sweep.
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(53) + 11);
        let db = gen_database(&mut rng);
        let queries = [
            RaExpr::rel("R")
                .project(vec![0])
                .intersect(RaExpr::rel("S")),
            RaExpr::rel("S").intersect(RaExpr::rel("R").project(vec![1])),
            RaExpr::rel("R")
                .project(vec![0])
                .intersect(RaExpr::rel("R").project(vec![1])),
            RaExpr::rel("R").intersect(RaExpr::rel("T")),
            RaExpr::rel("S")
                .intersect(RaExpr::rel("R").project(vec![0]))
                .difference(RaExpr::rel("T").project(vec![0])),
        ];
        for (i, q) in queries.iter().enumerate() {
            assert!(
                assert_instance_agreement(&format!("intersect seed {seed} q{i}"), q, &db),
                "intersection must lie inside the symbolic fragment"
            );
        }
    }
}

#[test]
fn bag_workload_multiplicity_ranges_agree() {
    for seed in 0..BAG_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(257) + 3);
        let db = gen_database(&mut rng).to_bags();
        // Monus-free queries only: difference/intersection have no
        // row-wise bag reading and must stay on enumeration.
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 2,
                allow_difference: false,
                allow_disequality: true,
                seed: rng.gen_range(0u64..1_000_000),
            },
        );
        let set_view = db.to_sets();
        let spec = exact_pool(&query, &set_view);
        let mut candidates: Vec<Tuple> = naive_eval(&query, &set_view)
            .unwrap()
            .iter()
            .take(2)
            .cloned()
            .collect();
        let arity = query.arity(db.schema()).unwrap();
        candidates.push(Tuple::new((0..arity).map(|_| Value::int(99))));
        for t in &candidates {
            let by_lineage =
                bag_bounds::multiplicity_range_lineage_with(&query, &db, t, &spec).unwrap();
            let by_engine = bag_bounds::multiplicity_range_with(&query, &db, t, &spec).unwrap();
            let by_seed = reference::multiplicity_range_seed(&query, &db, t, &spec).unwrap();
            assert_eq!(
                by_lineage, by_engine,
                "bag seed {seed}: lineage vs engine range of {t} for {query}"
            );
            assert_eq!(
                by_lineage, by_seed,
                "bag seed {seed}: lineage vs seed range of {t} for {query}"
            );
        }
    }
}

#[test]
fn lineage_reaches_configurations_enumeration_cannot() {
    // 34 independent nulls over the exact pool: the valuation space
    // saturates usize, so the engines refuse outright — the lineage
    // backend answers exactly, including a 2^80-plus model count.
    let rows: Vec<Tuple> = (0..34u32).map(|i| tup![Value::null(i)]).collect();
    let db = database_from_literal([("R", vec!["a"], rows), ("S", vec!["a"], vec![tup![1]])]);
    let q = RaExpr::rel("R").difference(RaExpr::rel("S"));
    let spec = exact_pool(&q, &db);
    assert!(matches!(
        cert::cert_with_nulls_with(&q, &db, &spec),
        Err(CertainError::TooManyWorlds { .. })
    ));
    let certain = cert::cert_with_nulls_lineage_with(&q, &db, &spec).unwrap();
    // No null candidate survives −S for certain (⊥ᵢ could be 1).
    assert!(certain.is_empty());
    let statuses =
        classify_candidates_lineage(&q, &db, &spec, &[tup![Value::null(0)], tup![1]]).unwrap();
    assert!(!statuses[0].certain && statuses[0].possible);
    // (1) is in no world's answer: 1 ∉ R.
    assert!(!statuses[1].certain && !statuses[1].possible);
    // µ over the canonical 4-pool: ⊥0 is an answer unless v(⊥0) = 1, so
    // the support is exactly 3 · 4^33 of 4^34 — counted, not sampled.
    let frac = prob::mu_k_lineage(&q, &db, &tup![Value::null(0)], 4).unwrap();
    assert_eq!(frac.denominator, 1u128 << 68);
    assert_eq!(frac.numerator, 3 * (1u128 << 66));
    assert!(matches!(
        prob::mu_k(&q, &db, &tup![Value::null(0)], 4),
        Err(CertainError::TooManyWorlds { .. })
    ));
}
