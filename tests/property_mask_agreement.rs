//! Property tests for the world-mask backend.
//!
//! The mask backend (`certa_algebra::mask` + `certa_certain::mask`)
//! decides certainty, candidate classification and the exact `µ_k`
//! measure by executing the physical plan **once**, with every tuple
//! carrying a bitset of the possible worlds containing it. On hundreds of
//! seeded random instances across four workloads — random full-RA
//! queries, random SQL lowered to algebra, queries built *deliberately
//! outside* the lineage fragment (syntactic `null(·)`/`const(·)`
//! predicates, null literals, ÷ / `Domᵏ` / `⋉⇑`), and the Figure 1 shop
//! database — every mask verdict must agree **exactly** with the
//! prepared/parallel world engines, with the seed's replan-per-world
//! oracles, and (where the query is inside the symbolic fragment) with the
//! lineage backend, for all three result kinds:
//!
//! * the certain-answer set (`cert⊥`),
//! * the per-candidate classification (certain / possible / certainly
//!   false),
//! * the exact `µ_k` fractions (numerator *and* denominator).
//!
//! Unlike the lineage suite there are **no fragment skips**: the mask
//! domain covers the full operator language, so every generated instance
//! must be answered. The out-of-fragment workload additionally asserts
//! that the lineage backend really does reject those instances — i.e. the
//! suite covers exactly the ground the dispatcher hands to the mask
//! backend.
//!
//! Workload sizing: 200 random-RA + 250 random-SQL (of which the ~55%
//! with a plain-algebra lowering reach the backends, ≈ 145) + 60
//! out-of-fragment + the shop queries — ≥ 400 instances answered by the
//! mask backend, every one compared against enumeration and the seed, and
//! the in-fragment share against lineage too.

use certa::certain::cert::{classify_candidates, classify_candidates_lineage};
use certa::certain::worlds::exact_pool;
use certa::certain::{cert, mask, prob, reference, CertainError, WorldSpec};
use certa::prelude::*;
use rand::prelude::*;

const RA_CASES: u64 = 200;
const SQL_CASES: u64 = 250;
const EXTENDED_CASES: u64 = 60;

/// The same join-friendly, repeated-null instance shape the prepared-world
/// and lineage suites use: small enough that exact_pool enumeration stays
/// in the hundreds, null-heavy enough that certainty is non-trivial.
fn gen_database(rng: &mut StdRng) -> Database {
    let mut r: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..5) {
        r.push(Tuple::new((0..2).map(|_| gen_value(rng))));
    }
    let mut s: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        s.push(Tuple::new([gen_value(rng)]));
    }
    let mut t: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        t.push(Tuple::new([
            Value::int(rng.gen_range(0i64..3)),
            Value::int(rng.gen_range(0i64..3)),
        ]));
    }
    database_from_literal([
        ("R", vec!["a", "b"], r),
        ("S", vec!["c"], s),
        ("T", vec!["d", "e"], t),
    ])
}

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.3) {
        Value::null(rng.gen_range(0u32..2))
    } else {
        Value::int(rng.gen_range(0i64..3))
    }
}

fn gen_query(rng: &mut StdRng, schema: &Schema) -> RaExpr {
    random_query(
        schema,
        &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed: rng.gen_range(0u64..1_000_000),
        },
    )
}

/// Candidate tuples for a query: a few naïve answers (may carry nulls)
/// plus a constant tuple that typically is an answer nowhere.
fn candidates_for(query: &RaExpr, db: &Database) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = naive_eval(query, db)
        .unwrap()
        .iter()
        .take(3)
        .cloned()
        .collect();
    let arity = query.arity(db.schema()).unwrap();
    out.push(Tuple::new((0..arity).map(|_| Value::int(99))));
    out
}

/// Assert the mask backend agrees with every other backend on one
/// instance, for classification, the certain set, and `µ_k`. Returns
/// `true` when the lineage backend also covered the instance (so callers
/// can assert how much of a workload was cross-checked three ways rather
/// than two).
fn assert_instance_agreement(label: &str, query: &RaExpr, db: &Database) -> bool {
    let spec = exact_pool(query, db);
    let tuples = candidates_for(query, db);

    // Classification: mask vs engine (prepared enumeration) vs seed
    // predicates, and vs lineage when the fragment allows.
    let prepared = PreparedQuery::prepare(query, db.schema()).unwrap();
    let by_mask = classify_candidates_mask(&prepared, db, &spec, &tuples)
        .unwrap_or_else(|e| panic!("{label}: mask backend failed on {query}: {e}"));
    let by_engine = classify_candidates(&prepared, db, &spec, &tuples).unwrap();
    // Morsel-axis determinism: the masked pass is morsel-parallel, and its
    // answers must be bit-identical at every requested worker count.
    for workers in [1usize, 2, 8] {
        let spec_w = spec.clone().with_threads(workers);
        let at_w = classify_candidates_mask(&prepared, db, &spec_w, &tuples).unwrap();
        assert_eq!(
            at_w, by_mask,
            "{label}: classification differs at {workers} workers for {query} on {db}"
        );
    }
    let lineage = match classify_candidates_lineage(query, db, &spec, &tuples) {
        Ok(statuses) => Some(statuses),
        Err(CertainError::Lineage(e)) if e.is_unsupported() => None,
        Err(e) => panic!("{label}: lineage failed on {query}: {e}"),
    };
    for (i, (t, m)) in tuples.iter().zip(&by_mask).enumerate() {
        assert_eq!(
            (m.certain, m.possible),
            (by_engine[i].certain, by_engine[i].possible),
            "{label}: mask vs engine classification of {t} for {query} on {db}"
        );
        if let Some(sym) = &lineage {
            assert_eq!(
                (m.certain, m.possible),
                (sym[i].certain, sym[i].possible),
                "{label}: mask vs lineage classification of {t} for {query} on {db}"
            );
        }
        assert_eq!(
            m.certain,
            reference::is_certain_answer_seed(query, db, t).unwrap(),
            "{label}: mask vs seed certainty of {t} for {query} on {db}"
        );
        assert_eq!(
            !m.possible,
            reference::is_certainly_false_seed(query, db, t).unwrap(),
            "{label}: mask vs seed certain-falsity of {t} for {query} on {db}"
        );
    }

    // The certain-answer set (and its worker-count invariance, tuple order
    // included).
    let by_mask = mask::cert_with_nulls_mask_with(query, db, &spec).unwrap();
    for workers in [1usize, 2, 8] {
        let spec_w = spec.clone().with_threads(workers);
        let at_w = mask::cert_with_nulls_mask_with(query, db, &spec_w).unwrap();
        assert_eq!(
            at_w, by_mask,
            "{label}: cert⊥ differs at {workers} workers for {query} on {db}"
        );
    }
    let by_engine = cert::cert_with_nulls_with(query, db, &spec).unwrap();
    let by_seed = reference::cert_with_nulls_seed(query, db, &spec).unwrap();
    assert_eq!(
        by_mask, by_engine,
        "{label}: mask vs engine cert⊥ of {query} on {db}"
    );
    assert_eq!(
        by_mask, by_seed,
        "{label}: mask vs seed cert⊥ of {query} on {db}"
    );
    if lineage.is_some() {
        let by_lineage = cert::cert_with_nulls_lineage_with(query, db, &spec).unwrap();
        assert_eq!(
            by_mask, by_lineage,
            "{label}: mask vs lineage cert⊥ of {query} on {db}"
        );
    }

    // Exact µ_k fractions, numerator and denominator.
    for k in [2usize, 4] {
        let mu_spec = WorldSpec::new(prob::canonical_pool(query, db, k));
        for t in tuples.iter().take(2) {
            let by_mask = prob::mu_k_mask(query, db, t, k).unwrap();
            let by_engine = prob::mu_k(query, db, t, k).unwrap();
            let (num, den) =
                reference::mu_k_conditional_seed(query, db, t, &mu_spec, |_| true).unwrap();
            assert_eq!(
                (by_mask.numerator, by_mask.denominator),
                (by_engine.numerator, by_engine.denominator),
                "{label}, k = {k}: mask vs engine µ_k of {t} for {query} on {db}"
            );
            assert_eq!(
                (by_mask.numerator, by_mask.denominator),
                (num as u128, den as u128),
                "{label}, k = {k}: mask vs seed µ_k of {t} for {query} on {db}"
            );
            if lineage.is_some() {
                let by_lineage = prob::mu_k_lineage(query, db, t, k).unwrap();
                assert_eq!(
                    (by_mask.numerator, by_mask.denominator),
                    (by_lineage.numerator, by_lineage.denominator),
                    "{label}, k = {k}: mask vs lineage µ_k of {t} for {query} on {db}"
                );
            }
            // µ_k is worker-count invariant too: the same counts must come
            // out of a batch compiled at 2 and 8 requested workers.
            for workers in [2usize, 8] {
                let batch =
                    mask::MaskBatch::compile(query, db, &mu_spec.clone().with_threads(workers))
                        .unwrap();
                assert_eq!(
                    batch.mu_counts(t),
                    (by_mask.numerator, by_mask.denominator),
                    "{label}, k = {k}: µ_k differs at {workers} workers for {t} on {db}"
                );
            }
        }
    }
    lineage.is_some()
}

#[test]
fn random_ra_workload_agrees_on_all_three_result_kinds() {
    let mut cross_checked = 0usize;
    for seed in 0..RA_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(37) + 5);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        if assert_instance_agreement(&format!("ra seed {seed}"), &query, &db) {
            cross_checked += 1;
        }
    }
    // The random-RA generator stays inside the symbolic fragment, so every
    // case is a full three-backend cross-check.
    assert_eq!(
        cross_checked, RA_CASES as usize,
        "every random-RA case must cross-check mask vs lineage vs enumeration"
    );
}

#[test]
fn sqlgen_workload_agrees_on_all_three_result_kinds() {
    let schema_db = gen_database(&mut StdRng::seed_from_u64(2));
    let schema = schema_db.schema().clone();
    let mut total = 0usize;
    let mut cross_checked = 0usize;
    for seed in 0..SQL_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(151) + 23);
        let db = gen_database(&mut rng);
        let sql = certa::workload::random_sql(
            &schema,
            &certa::workload::RandomSqlConfig {
                max_tables: 2,
                max_cond_depth: 2,
                domain_size: 3,
                allow_membership: seed % 3 == 0,
                seed: rng.gen_range(0u64..1_000_000),
            },
        );
        let stmt = sql_parse(&sql).unwrap();
        // Some generated statements (e.g. `… = NULL` under NOT) have no
        // plain-algebra lowering at all; they never reach any backend.
        let Ok(lowered) = lower_to_algebra(&stmt, db.schema()) else {
            continue;
        };
        total += 1;
        if assert_instance_agreement(&format!("sql seed {seed} ({sql})"), &lowered.expr, &db) {
            cross_checked += 1;
        }
    }
    // Unlike the lineage suite, *every* lowerable statement must be
    // answered by the mask backend — IS NULL predicates and membership
    // lowerings included (roughly 45% of generated statements have no
    // plain-algebra lowering at all and never reach any backend). A solid
    // share still cross-checks three ways.
    assert!(
        total >= SQL_CASES as usize / 2,
        "too few sqlgen cases lowered: {total}"
    );
    assert!(
        cross_checked >= total / 3,
        "too few sqlgen cases cross-checked against lineage: {cross_checked} of {total}"
    );
}

/// Queries built deliberately **outside** the lineage fragment: syntactic
/// null(·)/const(·) predicates, null-bearing literals, division, the
/// active-domain power and the unification anti-semijoin. The lineage
/// backend must reject every one of them; the mask backend must answer
/// them all, in exact agreement with enumeration and the seed oracles.
fn gen_extended_query(rng: &mut StdRng) -> RaExpr {
    let null_lit = |n: u32| {
        RaExpr::Literal(Relation::from_tuples(vec![
            Tuple::new([Value::null(n)]),
            Tuple::new([Value::int(1)]),
        ]))
    };
    match rng.gen_range(0u32..8) {
        0 => RaExpr::rel("R").select(Condition::IsNull(rng.gen_range(0usize..2))),
        1 => RaExpr::rel("R")
            .select(Condition::IsConst(0).and(Condition::neq_const(1, rng.gen_range(0i64..3)))),
        2 => RaExpr::rel("R")
            .select(Condition::IsNull(0).or(Condition::eq_const(1, rng.gen_range(0i64..3))))
            .project(vec![1]),
        // A literal-only null (⊥9) and a database null (⊥0) inside
        // literals: valuations touch neither occurrence.
        3 => RaExpr::rel("S").union(null_lit(9)),
        4 => RaExpr::rel("S").difference(null_lit(rng.gen_range(0u32..2))),
        5 => RaExpr::rel("R").divide(RaExpr::rel("S")),
        6 => RaExpr::DomPower(1).difference(RaExpr::rel("S")),
        _ => RaExpr::rel("R")
            .project(vec![rng.gen_range(0usize..2)])
            .anti_semijoin_unify(RaExpr::rel("S")),
    }
}

#[test]
fn out_of_fragment_workload_is_answered_by_the_mask_backend() {
    let mut rejected_by_lineage = 0usize;
    for seed in 0..EXTENDED_CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(71) + 3);
        let db = gen_database(&mut rng);
        let query = gen_extended_query(&mut rng);
        if !assert_instance_agreement(&format!("extended seed {seed}"), &query, &db) {
            rejected_by_lineage += 1;
        }
    }
    // These shapes are the lineage backend's documented fragment
    // boundaries; (nearly) all of them must actually be rejected there —
    // i.e. this workload exercises exactly the instances the dispatcher
    // hands to the mask backend.
    assert!(
        rejected_by_lineage >= EXTENDED_CASES as usize * 3 / 4,
        "out-of-fragment workload unexpectedly inside the lineage fragment: \
         only {rejected_by_lineage} of {EXTENDED_CASES} rejected"
    );
}

#[test]
fn shop_workload_agrees_on_all_three_result_kinds() {
    let db = shop_database(true);
    let queries = [
        ShopQueries::unpaid_orders(),
        ShopQueries::or_tautology(),
        RaExpr::rel("Payments").project(vec![0]),
        RaExpr::rel("Customers")
            .project(vec![0])
            .difference(RaExpr::rel("Payments").project(vec![0])),
        // Out-of-fragment shop queries: who paid with a missing order id?
        RaExpr::rel("Payments")
            .select(Condition::IsNull(1))
            .project(vec![0]),
        RaExpr::rel("Payments")
            .select(Condition::IsConst(1))
            .project(vec![0]),
    ];
    for (i, query) in queries.iter().enumerate() {
        assert_instance_agreement(&format!("shop query {i}"), query, &db);
    }
}

#[test]
fn mask_backend_handles_thread_count_invariant_engine_comparisons() {
    // Both sides of the comparison are parallel: the enumeration engine
    // chunks worlds across workers, the mask pass chunks rows into
    // morsels. Re-run a few instances across worker counts on *both*
    // backends to pin down that the agreement is thread-count independent
    // in every combination.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97) + 13);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        let spec = exact_pool(&query, &db);
        let by_mask = mask::cert_with_nulls_mask_with(&query, &db, &spec).unwrap();
        for threads in [1usize, 2, 16] {
            let spec = spec.clone().with_threads(threads);
            let by_engine = cert::cert_with_nulls_with(&query, &db, &spec).unwrap();
            assert_eq!(by_mask, by_engine, "seed {seed}, threads {threads}");
            let by_mask_t = mask::cert_with_nulls_mask_with(&query, &db, &spec).unwrap();
            assert_eq!(by_mask, by_mask_t, "seed {seed}, mask at {threads} workers");
        }
    }
}
