//! Observability property tests (PR 9).
//!
//! The claims:
//!
//! * `Pipeline::explain_analyze` is **measured truth**, not an estimate:
//!   on seeded random SQL, every per-operator row count in the report is
//!   bit-equal to re-executing that exact plan subtree standalone against
//!   the same database — and the report covers every plan line.
//! * The trace a request records is a **deterministic structure**: the
//!   same mask-backend workload traced at 1, 2 and 8 requested morsel
//!   workers yields bit-identical span trees (names, nesting, argument
//!   totals), differing only in timings and thread ids. Worker-layout
//!   facts (who claimed which morsel) go to metrics, never to spans.
//! * On the a07-style TPC-H join, per-operator wall times nest inside the
//!   total request time, and self times telescope back to the plan root.
//! * The pipeline-lifetime maintenance totals survive the LRU eviction
//!   that resets an entry's own counters — the PR 9 fix for the vanishing
//!   `explain()` maintenance story.

use certa::algebra::physical::{self, PhysOp, SetAnn, SetSource};
use certa::certain::mask::classify_candidates_mask;
use certa::certain::worlds::WorldSpec;
use certa::obs;
use certa::prelude::*;
use certa::sql::{lower_to_algebra, parse as sql_parse};
use certa::workload::{random_sql, RandomSqlConfig};

/// Pre-order walk over a physical plan: the order `render()` prints lines
/// and the order span ids are allocated during single-threaded execution.
fn preorder<'a>(op: &'a PhysOp, out: &mut Vec<&'a PhysOp>) {
    out.push(op);
    match op {
        PhysOp::Scan { .. } | PhysOp::Literal(_) | PhysOp::DomPower(_) | PhysOp::Cached { .. } => {}
        PhysOp::Select(e, _) | PhysOp::Project(e, _) => preorder(e, out),
        PhysOp::HashJoin { left, right, .. } => {
            preorder(left, out);
            preorder(right, out);
        }
        PhysOp::Product(a, b)
        | PhysOp::Union(a, b)
        | PhysOp::Intersect(a, b)
        | PhysOp::Difference(a, b)
        | PhysOp::Divide(a, b)
        | PhysOp::AntiSemiJoinUnify(a, b) => {
            preorder(a, out);
            preorder(b, out);
        }
    }
}

/// Rebuild the exact plan the pipeline caches for `sql`: parse, lower,
/// schema-statistics optimize, prepare.
fn pipeline_plan(sql: &str, schema: &certa::data::Schema) -> PhysOp {
    let stmt = sql_parse(sql).expect("generated SQL parses");
    let lowered = lower_to_algebra(&stmt, schema).expect("generated SQL lowers");
    let optimized = optimize(&lowered.expr, schema).expect("optimizer accepts the query");
    PreparedQuery::prepare(&optimized, schema)
        .expect("plan prepares")
        .plan()
        .clone()
}

#[test]
fn explain_analyze_rows_match_standalone_subtree_reexecution() {
    let db = random_database(&RandomDbConfig {
        relations: vec![
            ("R".to_string(), 2),
            ("S".to_string(), 3),
            ("T".to_string(), 2),
        ],
        tuples_per_relation: 60,
        domain_size: 4,
        null_count: 0,
        null_rate: 0.0,
        seed: 90,
    });
    let mut pipeline = Pipeline::new();
    let mut analyzed = 0usize;
    for seed in 0..40u64 {
        let sql = random_sql(
            db.schema(),
            &RandomSqlConfig {
                max_tables: 2,
                max_cond_depth: 3,
                domain_size: 4,
                allow_membership: true,
                seed,
            },
        );
        let report = match pipeline.explain_analyze(&sql, &db) {
            Ok(report) => report,
            // Outside the lowered fragment: nothing to analyze.
            Err(_) => continue,
        };
        analyzed += 1;

        let plan = pipeline_plan(&sql, db.schema());
        let mut subtrees = Vec::new();
        preorder(&plan, &mut subtrees);
        assert_eq!(
            report.operators.len(),
            subtrees.len(),
            "one measured operator per plan node for {sql:?}"
        );
        assert_eq!(
            report.operators.len(),
            report.plan.lines().count(),
            "one measured operator per rendered plan line for {sql:?}"
        );
        for (op_report, subtree) in report.operators.iter().zip(&subtrees) {
            assert_eq!(
                op_report.label,
                op_report.line.trim_start(),
                "span detail must be the plan line it annotates for {sql:?}"
            );
            let oracle: certa::algebra::AnnRel<SetAnn> =
                physical::execute(subtree, &SetSource(&db), &mut |_, rel| rel)
                    .expect("standalone subtree re-execution");
            assert_eq!(
                op_report.rows,
                oracle.len() as u64,
                "measured rows must equal the standalone cardinality of\n{subtree}\nfor {sql:?}"
            );
        }
    }
    assert!(
        analyzed >= 20,
        "the generator fragment should mostly analyze, got {analyzed}/40"
    );
}

#[test]
fn trace_structure_is_invariant_across_morsel_worker_counts() {
    // The 2^6-world masked workload from the bench suite: joins, a
    // projection and a difference over marked nulls, so the columnar
    // executor, its kernels and the morsel pool all run.
    let nulls: u32 = 6;
    let mut rows: Vec<Tuple> = (0..nulls)
        .map(|i| tup![i64::from(i), Value::null(i)])
        .collect();
    for j in 0..120i64 {
        rows.push(tup![100 + j, j % 7]);
    }
    let db = database_from_literal([
        ("R", vec!["a", "b"], rows),
        ("S", vec!["b"], vec![tup![1], tup![3], tup![5]]),
        ("T", vec!["a"], vec![tup![101], tup![105]]),
    ]);
    let query = RaExpr::rel("R")
        .join_on(RaExpr::rel("S"), &[(1, 0)], 2)
        .project(vec![0])
        .difference(RaExpr::rel("T"));
    let prepared = PreparedQuery::prepare(&query, db.schema()).unwrap();
    let candidates: Vec<Tuple> = (0..nulls).map(|i| tup![i64::from(i)]).collect();

    let mut signatures: Vec<(usize, String)> = Vec::new();
    let mut results = Vec::new();
    for workers in [1usize, 2, 8] {
        let spec = WorldSpec::new([certa::data::Const::Int(1), certa::data::Const::Int(2)])
            .with_threads(workers);
        let trace = obs::Trace::new();
        {
            let _installed = obs::install(Some(trace.clone()));
            let _root = obs::span("request");
            results.push(classify_candidates_mask(&prepared, &db, &spec, &candidates).unwrap());
        }
        assert!(trace.span_count() > 0, "the traced run must record spans");
        signatures.push((workers, trace.structure_signature()));
    }
    for pair in results.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "classifications must not depend on workers"
        );
    }
    for ((w0, s0), (w1, s1)) in signatures.iter().zip(signatures.iter().skip(1)) {
        assert_eq!(
            s0, s1,
            "trace structure must be identical at {w0} and {w1} requested worker(s)"
        );
    }
}

#[test]
fn explain_analyze_tpch_join_times_nest_and_telescope() {
    let db = TpchGenerator::new(TpchConfig::scaled_to(120, 0.0, 9)).generate();
    let sql = "SELECT c.name, o.orderkey FROM Customer c, Orders o \
               WHERE c.custkey = o.custkey AND o.totalprice <> 0";
    let mut pipeline = Pipeline::new();
    let report = pipeline.explain_analyze(sql, &db).unwrap();
    assert!(matches!(report.verdict, Verdict::Exact));
    assert!(!report.operators.is_empty());
    assert!(
        report.plan.contains("HashJoin"),
        "the join must survive planning:\n{}",
        report.plan
    );

    // The plan root is the first pre-order operator; every operator's
    // (inclusive) time nests inside it, and it nests inside the request.
    let root = &report.operators[0];
    assert!(root.time_us <= report.total_us);
    for op in &report.operators {
        assert!(op.time_us <= root.time_us + 1);
        assert!(op.self_time_us <= op.time_us);
    }
    // Self times telescope back to the root's inclusive time (µs
    // truncation can lose — never gain — one microsecond per operator).
    let self_sum: u64 = report.operators.iter().map(|o| o.self_time_us).sum();
    assert!(
        self_sum <= root.time_us + report.operators.len() as u64,
        "self times ({self_sum} µs) cannot exceed the root's inclusive time ({} µs)",
        root.time_us
    );

    // The Chrome export of the same trace is non-empty and loadable: every
    // complete event carries the fields a viewer sorts and nests by.
    let chrome = report.trace.to_chrome_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("op:HashJoin"));
}

#[test]
fn lifetime_maintenance_totals_survive_lru_eviction() {
    let db = database_from_literal([
        ("R", vec!["a"], vec![tup![0], tup![1], tup![2]]),
        ("S", vec!["a"], vec![tup![1]]),
    ]);
    let q1 = "SELECT r.a FROM R r WHERE r.a <> 1";
    let q2 = "SELECT s.a FROM S s WHERE s.a = 1";

    let mut pipeline = Pipeline::with_cache_capacity(1);
    pipeline.execute(q1, &db, Scheme::Exact).unwrap();
    pipeline.execute(q1, &db, Scheme::Exact).unwrap();
    let explain = pipeline.explain(q1, &db).unwrap();
    assert_eq!(explain.maintenance.served, 1);
    assert_eq!(explain.lifetime.served, 1);
    assert_eq!(explain.lifetime.recomputed, 1);

    // Evict q1's entry (capacity 1), then recompile it: the per-entry
    // counters restart from zero, the lifetime totals do not.
    pipeline.execute(q2, &db, Scheme::Exact).unwrap();
    pipeline.execute(q1, &db, Scheme::Exact).unwrap();
    let explain = pipeline.explain(q1, &db).unwrap();
    assert_eq!(
        explain.maintenance.served, 0,
        "eviction resets the entry's own counters"
    );
    let totals = pipeline.maintenance_totals();
    assert_eq!(totals.served, 1, "lifetime totals survive eviction");
    assert_eq!(totals.recomputed, 3);
    assert!(totals.evicted >= 2);
    assert_eq!(explain.lifetime.served, 1);
    assert_eq!(explain.lifetime.recomputed, 3);
}
