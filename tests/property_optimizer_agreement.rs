//! Differential testing of the null-aware logical optimizer.
//!
//! The optimizer (`certa_algebra::opt`) claims that every rewrite —
//! selection pushdown, greedy join reordering, dead-column pruning, the
//! null-aware leaf clustering — is an *identity in every annotation domain*
//! of the physical engine. This suite holds it to that claim on seeded
//! random inputs, three ways:
//!
//! * **set semantics** — optimized ≡ unoptimized relations, on random SQL
//!   (through the SQL-faithful 3VL lowering) and on random relational
//!   algebra (which additionally exercises `∩` and deeper `−` nesting);
//! * **bag semantics** — the same plans compared with full multiplicities;
//! * **c-table semantics** — the same certain (`Eval_t`) and possible
//!   (`Eval_p`) answers for the `Eager` and `Aware` grounding strategies.
//!   (`SemiEager`/`Lazy` propagate forced equalities *into tuples* at
//!   strategy-defined points, so their possible-answer *representation* is
//!   legitimately plan-shape dependent — the same reason the engine's
//!   scan-pushed selections already ground at different points than the
//!   seed interpreter. `Eager` grounds atom-by-atom, which is a
//!   homomorphism under Kleene's connectives, and `Aware` grounds
//!   semantically at the end; both are plan-shape invariant.)
//!
//! Acceptance bar: ≥ 500 seeded cases in total with zero disagreements.

use certa::ctables::{eval::eval_conditional_reference, Strategy};
use certa::prelude::*;
use certa::sql::lower_to_algebra_3vl;
use certa::workload::{random_sql, RandomSqlConfig};

const SQL_CASES: u64 = 350;
const RA_CASES: u64 = 250;

/// A null-heavy database over three join-friendly relations (the same
/// shape as the SQL differential suite).
fn db_config(seed: u64) -> RandomDbConfig {
    RandomDbConfig {
        relations: vec![
            ("R".to_string(), 2),
            ("S".to_string(), 1),
            ("T".to_string(), 3),
        ],
        tuples_per_relation: 5,
        domain_size: 4,
        null_count: 3,
        null_rate: 0.3,
        seed,
    }
}

/// Optimize with schema-only statistics on even seeds and instance
/// statistics (null-aware ordering) on odd ones, so both code paths face
/// the whole case load.
fn optimized_for(expr: &RaExpr, db: &Database, seed: u64) -> RaExpr {
    if seed.is_multiple_of(2) {
        optimize(expr, db.schema()).unwrap()
    } else {
        optimize_with(expr, db.schema(), &Stats::from_database(db)).unwrap()
    }
}

#[test]
fn optimized_sql_plans_agree_under_set_and_bag_semantics() {
    let mut checked = 0u64;
    for seed in 0..SQL_CASES {
        let db = random_database(&db_config(seed.wrapping_mul(17) + 5));
        let sql = random_sql(
            db.schema(),
            &RandomSqlConfig {
                seed,
                ..RandomSqlConfig::default()
            },
        );
        let stmt = sql_parse(&sql).unwrap_or_else(|e| panic!("seed {seed}: {sql}: {e}"));
        let lowered = lower_to_algebra_3vl(&stmt, db.schema())
            .unwrap_or_else(|e| panic!("seed {seed}: {sql}: {e}"));
        let opt = optimized_for(&lowered.expr, &db, seed);

        let base = PreparedQuery::prepare(&lowered.expr, db.schema()).unwrap();
        let fast = PreparedQuery::prepare(&opt, db.schema()).unwrap();
        assert_eq!(
            fast.eval_set(&db).unwrap(),
            base.eval_set(&db).unwrap(),
            "seed {seed}: set answers diverge\n  {sql}\n  optimized: {opt}\non\n{db}"
        );
        let bags = db.to_bags();
        assert_eq!(
            fast.eval_bag(&bags).unwrap(),
            base.eval_bag(&bags).unwrap(),
            "seed {seed}: bag multiplicities diverge\n  {sql}\n  optimized: {opt}\non\n{db}"
        );
        checked += 1;
    }
    assert!(checked >= 300, "only {checked} SQL cases were exercised");
}

#[test]
fn optimized_algebra_agrees_under_all_three_annotation_domains() {
    let mut checked = 0u64;
    let mut ctable_checked = 0u64;
    for seed in 0..RA_CASES {
        let db = random_database(&db_config(seed.wrapping_mul(31) + 3));
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                max_depth: 3,
                allow_difference: true,
                allow_disequality: true,
                seed: seed.wrapping_mul(101) + 7,
            },
        );
        let opt = optimized_for(&query, &db, seed);

        // Set semantics, against both the engine and the seed oracle.
        let base = eval(&query, &db).unwrap();
        let fast = eval(&opt, &db).unwrap();
        assert_eq!(
            fast, base,
            "seed {seed}: set answers diverge for {query}\n  optimized: {opt}\non\n{db}"
        );
        let oracle = certa::algebra::reference::eval_set_reference(&query, &db).unwrap();
        assert_eq!(fast, oracle, "seed {seed}: optimized vs seed oracle");

        // Bag semantics.
        let bags = db.to_bags();
        let base_bag = certa::algebra::bag_eval::eval_bag(&query, &bags).unwrap();
        let fast_bag = certa::algebra::bag_eval::eval_bag(&opt, &bags).unwrap();
        assert_eq!(
            fast_bag, base_bag,
            "seed {seed}: bag multiplicities diverge for {query}\n  optimized: {opt}"
        );

        // Conditional semantics: same certain and possible answers for the
        // plan-shape-invariant strategies, against both the engine on the
        // unoptimized expression and the seed reference evaluator.
        for strategy in [Strategy::Eager, Strategy::Aware] {
            let base_ct = eval_conditional(&query, &db, strategy).unwrap();
            let fast_ct = eval_conditional(&opt, &db, strategy).unwrap();
            assert_eq!(
                fast_ct.certain(),
                base_ct.certain(),
                "seed {seed} {strategy:?}: certain answers diverge for {query}\n  optimized: {opt}"
            );
            assert_eq!(
                fast_ct.possible(),
                base_ct.possible(),
                "seed {seed} {strategy:?}: possible answers diverge for {query}\n  optimized: {opt}"
            );
            let reference = eval_conditional_reference(&query, &db, strategy).unwrap();
            assert_eq!(fast_ct.certain(), reference.certain());
            assert_eq!(fast_ct.possible(), reference.possible());
            ctable_checked += 1;
        }
        checked += 1;
    }
    assert!(
        checked >= 200,
        "only {checked} algebra cases were exercised"
    );
    assert!(ctable_checked >= 400, "c-table legs: {ctable_checked}");
}

#[test]
fn optimizer_is_deterministic_across_runs() {
    for seed in 0..40 {
        let db = random_database(&db_config(seed));
        let query = random_query(
            db.schema(),
            &RandomQueryConfig {
                seed: seed.wrapping_mul(7) + 1,
                ..RandomQueryConfig::default()
            },
        );
        let stats = Stats::from_database(&db);
        let a = optimize_with(&query, db.schema(), &stats).unwrap();
        let b = optimize_with(&query, db.schema(), &stats).unwrap();
        assert_eq!(a, b, "seed {seed}: optimizer must be deterministic");
    }
}
