//! Property tests for the prepared/parallel certain-answer pipeline.
//!
//! The exact machinery of `certa-certain` was rewired from
//! replan-per-world loops (kept verbatim in `certa::certain::reference`)
//! onto compile-once prepared queries, zero-copy `ValuationSource` worlds
//! and the chunked-parallel `WorldEngine`. On random null-heavy instances
//! and random full-RA queries, every scheme must agree with its seed
//! oracle **exactly**, and the worker-thread count (1, 2, and more workers
//! than worlds) must never change a result.

use certa::certain::reference;
use certa::certain::worlds::exact_pool;
use certa::certain::{bag_bounds, cert, prob};
use certa::prelude::*;
use rand::prelude::*;

const CASES: u64 = 60;

/// Thread counts exercised for every case: sequential, two workers, and
/// more workers than there are worlds on these instances.
const THREADS: [usize; 3] = [1, 2, 16];

/// A small database with join-friendly shapes and repeated nulls — small
/// enough that exact_pool world enumeration stays in the hundreds. The
/// third relation `T` is always **complete** (null-free): queries touching
/// it give the null-aware optimizer genuinely world-invariant subplans to
/// hoist, so this suite also exercises the evaluate-once cache splicing.
fn gen_database(rng: &mut StdRng) -> Database {
    let mut r: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..5) {
        r.push(Tuple::new((0..2).map(|_| gen_value(rng))));
    }
    let mut s: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        s.push(Tuple::new([gen_value(rng)]));
    }
    let mut t: Vec<Tuple> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        t.push(Tuple::new([
            Value::int(rng.gen_range(0i64..3)),
            Value::int(rng.gen_range(0i64..3)),
        ]));
    }
    database_from_literal([
        ("R", vec!["a", "b"], r),
        ("S", vec!["c"], s),
        ("T", vec!["d", "e"], t),
    ])
}

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.3) {
        Value::null(rng.gen_range(0u32..2))
    } else {
        Value::int(rng.gen_range(0i64..3))
    }
}

fn gen_query(rng: &mut StdRng, schema: &Schema) -> RaExpr {
    random_query(
        schema,
        &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed: rng.gen_range(0u64..1_000_000),
        },
    )
}

#[test]
fn cert_with_nulls_and_intersection_agree_with_seed_for_all_thread_counts() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        let spec = exact_pool(&query, &db);
        let oracle_nulls = reference::cert_with_nulls_seed(&query, &db, &spec).unwrap();
        let oracle_inter = reference::cert_intersection_seed(&query, &db, &spec).unwrap();
        for threads in THREADS {
            let spec = spec.clone().with_threads(threads);
            let got_nulls = cert::cert_with_nulls_with(&query, &db, &spec).unwrap();
            assert_eq!(
                got_nulls, oracle_nulls,
                "seed {seed}, {threads} threads: cert⊥ of {query} on {db}"
            );
            let got_inter = cert::cert_intersection_with(&query, &db, &spec).unwrap();
            assert_eq!(
                got_inter, oracle_inter,
                "seed {seed}, {threads} threads: cert∩ of {query} on {db}"
            );
        }
    }
}

#[test]
fn tuple_certainty_predicates_agree_with_seed() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97) + 1);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        // Candidates: naïve answers (may contain nulls) plus a constant
        // tuple that typically is not an answer.
        let mut candidates: Vec<Tuple> = naive_eval(&query, &db)
            .unwrap()
            .iter()
            .take(2)
            .cloned()
            .collect();
        let arity = query.arity(db.schema()).unwrap();
        candidates.push(Tuple::new((0..arity).map(|_| Value::int(99))));
        for t in &candidates {
            assert_eq!(
                is_certain_answer(&query, &db, t).unwrap(),
                reference::is_certain_answer_seed(&query, &db, t).unwrap(),
                "seed {seed}: certainty of {t} for {query} on {db}"
            );
            assert_eq!(
                is_certainly_false(&query, &db, t).unwrap(),
                reference::is_certainly_false_seed(&query, &db, t).unwrap(),
                "seed {seed}: certain falsity of {t} for {query} on {db}"
            );
        }
        let pool = Relation::with_arity(arity, candidates);
        assert_eq!(
            cert::certainly_false_among(&query, &db, &pool).unwrap(),
            reference::certainly_false_among_seed(&query, &db, &pool).unwrap(),
            "seed {seed}: certainly-false set for {query} on {db}"
        );
    }
}

#[test]
fn prepared_translation_pairs_match_plain_evaluation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + 5);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        // (Q+, Q?): prepared evaluation equals the seed eval() path, and
        // the Theorem 4.7 guarantee holds against the parallel cert⊥.
        let pair = certa::certain::approx37::translate(&query, db.schema()).unwrap();
        let prepared = pair.prepare(db.schema()).unwrap();
        let (plus, question) = prepared.eval(&db).unwrap();
        assert_eq!(plus, eval(&pair.q_plus, &db).unwrap(), "seed {seed}");
        assert_eq!(
            question,
            eval(&pair.q_question, &db).unwrap(),
            "seed {seed}"
        );
        let certain = cert_with_nulls(&query, &db).unwrap();
        assert!(
            plus.is_subset_of(&certain),
            "seed {seed}: Q+ ⊄ cert⊥ for {query} on {db}"
        );
        // (Qt, Qf): same for Figure 2(a) — skipped for wide queries, whose
        // Qf materialises Dom^k powers too large for a property loop (the
        // blow-up measured by experiment E3).
        if query.arity(db.schema()).unwrap() > 4 {
            continue;
        }
        let pair = certa::certain::approx51::translate(&query, db.schema()).unwrap();
        let prepared = pair.prepare(db.schema()).unwrap();
        let (q_true, q_false) = prepared.eval(&db).unwrap();
        assert_eq!(q_true, eval(&pair.q_true, &db).unwrap(), "seed {seed}");
        assert_eq!(q_false, eval(&pair.q_false, &db).unwrap(), "seed {seed}");
        assert!(
            q_true.is_subset_of(&certain),
            "seed {seed}: Qt ⊄ cert⊥ for {query} on {db}"
        );
    }
}

#[test]
fn mu_k_agrees_with_seed_counting() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(13) + 3);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        let arity = query.arity(db.schema()).unwrap();
        let tuple = naive_eval(&query, &db)
            .unwrap()
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| Tuple::new((0..arity).map(|_| Value::int(0))));
        for k in [2usize, 4] {
            let fast = mu_k(&query, &db, &tuple, k).unwrap();
            let spec = certa::certain::WorldSpec::new(prob::canonical_pool(&query, &db, k));
            let (num, den) =
                reference::mu_k_conditional_seed(&query, &db, &tuple, &spec, |_| true).unwrap();
            assert_eq!(
                (fast.numerator, fast.denominator),
                (num as u128, den as u128),
                "seed {seed}, k = {k}: µ_k of {tuple} for {query} on {db}"
            );
        }
    }
}

#[test]
fn bag_multiplicity_range_agrees_with_seed() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7) + 11);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        let bags = db.to_bags();
        let arity = query.arity(db.schema()).unwrap();
        let tuple = naive_eval(&query, &db)
            .unwrap()
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| Tuple::new((0..arity).map(|_| Value::int(1))));
        let spec = exact_pool(&query, &db);
        let oracle = reference::multiplicity_range_seed(&query, &bags, &tuple, &spec).unwrap();
        for threads in THREADS {
            let spec = spec.clone().with_threads(threads);
            let got = bag_bounds::multiplicity_range_with(&query, &bags, &tuple, &spec).unwrap();
            assert_eq!(
                got, oracle,
                "seed {seed}, {threads} threads: □/◇ of {tuple} for {query} on {db}"
            );
        }
    }
}

#[test]
fn hoisted_world_evaluation_matches_plain_prepared_and_seed_evaluation() {
    // The evaluate-once split: for every world, the hoisted plan (cache
    // spliced in) must produce exactly the rows of (a) the same optimized
    // plan executed without hoisting and (b) the seed's eval() on the
    // materialised world. Across the whole suite, hoisting must actually
    // trigger — null-free T-subplans exist by construction.
    use certa::certain::worlds::enumerate_worlds;
    let mut hoisted_total = 0usize;
    let mut fully_invariant = 0usize;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(211) + 9);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        let stats = Stats::from_database(&db);
        let prepared = PreparedQuery::prepare_optimized_with(&query, db.schema(), &stats).unwrap();
        let world_query = prepared.for_world_db(&db);
        let cache = world_query
            .materialize(&certa::algebra::physical::SetSource(&db))
            .unwrap();
        hoisted_total += world_query.hoisted_count();
        fully_invariant += usize::from(world_query.fully_invariant());
        let spec = exact_pool(&query, &db);
        for (v, world) in enumerate_worlds(&db, &spec).unwrap().take(40) {
            let hoisted = world_query.eval_set_world(&db, &v, &cache).unwrap();
            let plain = prepared.eval_set_world(&db, &v).unwrap();
            let oracle = eval(&query, &world).unwrap();
            assert_eq!(
                hoisted, plain,
                "seed {seed}: hoisted vs plain prepared on world {v} for {query}"
            );
            assert_eq!(
                hoisted, oracle,
                "seed {seed}: hoisted vs seed eval on world {v} for {query}"
            );
        }
    }
    assert!(
        hoisted_total > 0,
        "no subplan was ever hoisted across {CASES} random cases"
    );
    // Queries that never touch R or S are entirely world-invariant; the
    // generator produces some.
    assert!(
        fully_invariant > 0,
        "no fully world-invariant plan across {CASES} random cases"
    );
}

#[test]
fn pipeline_exact_scheme_is_thread_count_invariant_via_spec_default() {
    // The pipeline's exact scheme goes through cert_with_nulls with the
    // default (auto) parallelism; its answers must match a single-threaded
    // run of the same spec.
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed + 400);
        let db = gen_database(&mut rng);
        let query = gen_query(&mut rng, db.schema());
        let auto = cert_with_nulls(&query, &db).unwrap();
        let spec = exact_pool(&query, &db).with_threads(1);
        let sequential = cert::cert_with_nulls_with(&query, &db, &spec).unwrap();
        assert_eq!(auto, sequential, "seed {seed}: {query} on {db}");
    }
}
