//! Crash-recovery property tests (PR 10).
//!
//! PR 10 gives the store a durability subsystem: every mutation appends a
//! checksummed frame to a write-ahead delta log before returning,
//! snapshots retire the replayed prefix via temp-file + atomic rename,
//! and `recover` rebuilds the newest snapshot plus the valid WAL tail,
//! truncating at the first torn, bit-flipped or out-of-order frame. The
//! claims this suite checks, across seeded mutation sequences crossed
//! with seeded crash schedules:
//!
//! * **prefix consistency** — whatever the crash point (an injected
//!   mid-write crash, a torn tail, a flipped byte, a crash between the
//!   snapshot temp-file and its rename), the recovered database is
//!   bit-identical to a state the writer actually committed — never a
//!   torn hybrid, never a state that existed only in memory;
//! * **oracle agreement** — a recovered store answers certain-answer
//!   queries exactly like the committed state it recovered to, under the
//!   seed's possible-worlds oracle;
//! * **cache hygiene** — recovery mints a fresh instance, so a pipeline
//!   that cached answers before the crash never serves them afterwards:
//!   zero pre-crash cache hits, every post-recovery answer recomputed.
//!
//! The crash schedule is process-global, so every test that arms it
//! holds `CRASH_LOCK`. The byte-surgery and clean-shutdown tests need no
//! feature; the injected-crash tests run under `--features
//! fault-injection` (CI drives them over a seed matrix via
//! `CERTA_RECOVERY_SEED_BASE`).

use certa::certain::reference;
use certa::prelude::*;
use rand::prelude::*;
use std::path::{Path, PathBuf};

/// Seeded crash schedules the fuzz test drives (≥ 200 per the PR-10
/// acceptance bar); at least `MIN_FIRED` of them must actually crash.
#[cfg(feature = "fault-injection")]
const SCHEDULES: u64 = 220;
#[cfg(feature = "fault-injection")]
const MIN_FIRED: usize = 150;

/// CI shifts the whole seed window with `CERTA_RECOVERY_SEED_BASE` so
/// different matrix rows explore different schedules.
#[cfg(feature = "fault-injection")]
fn seed_base() -> u64 {
    std::env::var("CERTA_RECOVERY_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The crash schedule is process-global and the harness runs `#[test]`s
/// concurrently: serialize every test that arms it.
#[cfg(feature = "fault-injection")]
static CRASH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "certa-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gen_value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.25) {
        Value::null(rng.gen_range(0u32..4))
    } else {
        Value::int(rng.gen_range(0i64..5))
    }
}

/// A small two-relation instance with repeated nulls — big enough for
/// joins and differences, small enough for the possible-worlds oracle.
fn base_db(rng: &mut StdRng) -> Database {
    let r: Vec<Tuple> = (0..rng.gen_range(2usize..5))
        .map(|_| Tuple::new([gen_value(rng), gen_value(rng)]))
        .collect();
    let s: Vec<Tuple> = (0..rng.gen_range(1usize..4))
        .map(|_| Tuple::new([gen_value(rng)]))
        .collect();
    database_from_literal([("R", vec!["a", "b"], r), ("S", vec!["c"], s)])
}

/// Apply one random mutation, spanning every WAL path: plain deltas
/// (insert/delete/resolve), an immediate full-content reset
/// (`set_relation`), and the deferred reset of `relation_mut` whose
/// frame is only flushed by the *next* mutator. Returns the mutator's
/// own result; injected crashes surface here or as sticky poison.
fn mutate_step(rng: &mut StdRng, db: &mut Database) -> Result<(), certa::data::DataError> {
    match rng.gen_range(0u32..10) {
        0..=3 => {
            let (rel, arity) = if rng.gen_bool(0.5) {
                ("R", 2)
            } else {
                ("S", 1)
            };
            let tuples: Vec<Tuple> = (0..rng.gen_range(1usize..3))
                .map(|_| Tuple::new((0..arity).map(|_| gen_value(rng))))
                .collect();
            db.insert_all(rel, tuples)
        }
        4..=5 => {
            let rel = if rng.gen_bool(0.5) { "R" } else { "S" };
            let victim = {
                let r = db.relation(rel).unwrap();
                if r.is_empty() {
                    None
                } else {
                    r.iter().nth(rng.gen_range(0..r.len())).cloned()
                }
            };
            match victim {
                Some(t) => db.delete(rel, &t).map(|_| ()),
                None => Ok(()),
            }
        }
        6..=7 => {
            let nulls: Vec<_> = db.nulls().into_iter().collect();
            if nulls.is_empty() {
                return Ok(());
            }
            let null = nulls[rng.gen_range(0..nulls.len())];
            let _ = db.resolve_null(null, Const::Int(rng.gen_range(0i64..5)));
            Ok(())
        }
        8 => {
            let t = Tuple::new([gen_value(rng), gen_value(rng)]);
            db.relation_mut("R").map(|rel| {
                rel.insert(t);
            })
        }
        _ => {
            let tuples: Vec<Tuple> = (0..rng.gen_range(0usize..3))
                .map(|_| Tuple::new([gen_value(rng)]))
                .collect();
            db.set_relation("S", Relation::with_arity(1, tuples))
        }
    }
}

/// Drive a seeded mutation sequence against an attached database,
/// recording a clone after every *successfully logged* step (a clone
/// drops the durability attachment, so recording never perturbs the
/// log). Stops at the first WAL failure. Returns the committed states,
/// oldest first, and whether the log died.
fn run_sequence(rng: &mut StdRng, db: &mut Database, steps: usize) -> (Vec<Database>, bool) {
    run_sequence_with(rng, db, steps, 0.12)
}

/// [`run_sequence`] with an explicit per-step snapshot probability (the
/// byte-surgery test passes 0.0 so the WAL keeps every frame).
fn run_sequence_with(
    rng: &mut StdRng,
    db: &mut Database,
    steps: usize,
    snapshot_p: f64,
) -> (Vec<Database>, bool) {
    let mut states = vec![db.clone()];
    for _ in 0..steps {
        let ok = mutate_step(rng, db).is_ok();
        if !ok || db.durability_crashed().is_some() {
            return (states, true);
        }
        states.push(db.clone());
        if snapshot_p > 0.0
            && rng.gen_bool(snapshot_p)
            && (db.snapshot_durable().is_err() || db.durability_crashed().is_some())
        {
            return (states, true);
        }
    }
    (states, false)
}

/// The recovered database must be bit-identical to one of the recorded
/// committed states; returns its index.
fn assert_committed_prefix(
    recovered: &Database,
    states: &[Database],
    report: &RecoveryReport,
    context: &str,
) -> usize {
    states
        .iter()
        .position(|s| s == recovered)
        .unwrap_or_else(|| {
            panic!(
                "{context}: recovered state ({} R-tuples, {} S-tuples, epoch {}) \
                 matches none of the {} committed states ({report:?})",
                recovered.relation("R").unwrap().len(),
                recovered.relation("S").unwrap().len(),
                recovered.epoch(),
                states.len(),
            )
        })
}

/// Certain answers on the recovered store must agree with the seed's
/// possible-worlds oracle evaluated on the committed state it matched.
fn assert_oracle_agreement(recovered: &Database, committed: &Database, seed: u64, context: &str) {
    let query = random_query(
        recovered.schema(),
        &RandomQueryConfig {
            max_depth: 2,
            allow_difference: true,
            allow_disequality: true,
            seed,
        },
    );
    let spec = certa::certain::worlds::exact_pool(&query, committed);
    let on_recovered = cert_with_nulls(&query, recovered).unwrap();
    let oracle = reference::cert_with_nulls_seed(&query, committed, &spec).unwrap();
    assert_eq!(
        on_recovered, oracle,
        "{context}: certain answers diverge from the seed oracle after recovery"
    );
}

// ---------------------------------------------------------------------
// No-feature tests: clean shutdown, kill -9, and byte surgery on the log.
// ---------------------------------------------------------------------

/// A clean detach flushes any deferred reset; recovery then reproduces
/// the final state exactly, and keeps doing so across further sessions.
#[test]
fn clean_shutdown_recovers_the_final_state_exactly() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let dir = test_dir(&format!("clean-{seed}"));
        let mut db = base_db(&mut rng);
        db.attach_durable(&dir).unwrap();
        let steps = rng.gen_range(5usize..25);
        let (_, crashed) = run_sequence(&mut rng, &mut db, steps);
        assert!(!crashed, "no faults are armed");
        db.detach_durable().unwrap();

        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(recovered, db, "seed {seed}: clean recovery must be exact");
        assert!(report.wal_truncated.is_none(), "seed {seed}: {report:?}");

        // Second generation: keep mutating the recovered store, recover
        // again — post-recovery appends must extend valid history.
        let mut db2 = recovered;
        let (_, crashed) = run_sequence(&mut rng, &mut db2, 6);
        assert!(!crashed);
        db2.detach_durable().unwrap();
        let (recovered2, _) = recover(&dir).unwrap();
        assert_eq!(recovered2, db2, "seed {seed}: second-generation recovery");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Dropping the writer without detaching models `kill -9` with an intact
/// log: the recovered state is one of the committed states (the very
/// last one, unless a deferred structural reset was still pending).
#[test]
fn kill_minus_nine_recovers_a_committed_state() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5851_F42D).wrapping_add(3));
        let dir = test_dir(&format!("kill-{seed}"));
        let mut db = base_db(&mut rng);
        db.attach_durable(&dir).unwrap();
        let steps = rng.gen_range(5usize..25);
        let (states, crashed) = run_sequence(&mut rng, &mut db, steps);
        assert!(!crashed);
        drop(db); // no detach: the OS reclaims the process mid-flight

        let (recovered, report) = recover(&dir).unwrap();
        let matched =
            assert_committed_prefix(&recovered, &states, &report, &format!("seed {seed}"));
        if seed % 4 == 0 {
            assert_oracle_agreement(&recovered, &states[matched], seed, &format!("seed {seed}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Byte surgery on the log: truncate the WAL at arbitrary offsets and
/// flip single bytes in its tail. Recovery must stop at the damage and
/// land on a committed prefix — never crash, never resurrect the tail.
#[test]
fn torn_and_flipped_wal_tails_recover_to_a_committed_prefix() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64).wrapping_add(9));
        let src = test_dir(&format!("surgery-src-{seed}"));
        let mut db = base_db(&mut rng);
        db.attach_durable(&src).unwrap();
        let (states, crashed) = run_sequence_with(&mut rng, &mut db, 20, 0.0);
        assert!(!crashed);
        drop(db);

        let wal = std::fs::read(src.join("wal.log")).unwrap();
        assert!(!wal.is_empty(), "seed {seed}: the sequence must log frames");

        let scratch = test_dir(&format!("surgery-dst-{seed}"));
        // Truncations: a sweep of cut points including both edges.
        for i in 0..=12usize {
            let cut = wal.len() * i / 12;
            restore_dir(&src, &scratch);
            std::fs::write(scratch.join("wal.log"), &wal[..cut]).unwrap();
            let (recovered, report) = recover(&scratch).unwrap();
            assert_committed_prefix(
                &recovered,
                &states,
                &report,
                &format!("seed {seed}, truncate at {cut}/{}", wal.len()),
            );
        }
        // Bit flips: damage bytes across the tail 60% of the log.
        for i in 0..8usize {
            let pos = wal.len() * 2 / 5 + (wal.len() * 3 / 5) * i / 8;
            let mut bad = wal.clone();
            bad[pos] ^= 0x40;
            restore_dir(&src, &scratch);
            std::fs::write(scratch.join("wal.log"), &bad).unwrap();
            let (recovered, report) = recover(&scratch).unwrap();
            assert_committed_prefix(
                &recovered,
                &states,
                &report,
                &format!("seed {seed}, flip at {pos}/{}", wal.len()),
            );
            assert!(
                report.wal_truncated.is_some(),
                "seed {seed}: a flipped byte at {pos} must cut the tail ({report:?})"
            );
        }

        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

/// Reset `dst` to an exact copy of the durability dir `src`.
fn restore_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

// ---------------------------------------------------------------------
// Injected-crash tests (`--features fault-injection`).
// ---------------------------------------------------------------------

/// The headline fuzz: seeded mutation sequences crossed with seeded
/// crash schedules over every durability fault site. Whatever fired —
/// a mangled in-flight frame, a mangled snapshot temp file, a lost
/// rename — recovery lands on a committed prefix, and (sampled) answers
/// certain-answer queries exactly like that prefix.
#[cfg(feature = "fault-injection")]
#[test]
fn seeded_crash_schedules_recover_to_a_committed_prefix() {
    use certa::data::{arm_crashes, disarm_crashes};
    let _guard = CRASH_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let base = seed_base();
    let mut fired = 0usize;
    for case in 0..SCHEDULES {
        let seed = base.wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(11));
        let dir = test_dir("fuzz");
        let mut db = base_db(&mut rng);
        db.attach_durable(&dir).unwrap();

        arm_crashes(seed.wrapping_mul(0x517C_C1B7).wrapping_add(5), 8);
        let steps = rng.gen_range(10usize..30);
        let (states, crashed) = run_sequence(&mut rng, &mut db, steps);
        disarm_crashes();
        if crashed {
            fired += 1;
            assert!(
                db.durability_crashed().is_some(),
                "case {case}: a WAL failure must poison the attachment"
            );
        }
        drop(db); // the modeled kill -9

        let (recovered, report) = recover(&dir).unwrap();
        let context = format!("case {case} (crashed={crashed})");
        let matched = assert_committed_prefix(&recovered, &states, &report, &context);
        if case % 8 == 0 {
            assert_oracle_agreement(&recovered, &states[matched], seed, &context);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        fired >= MIN_FIRED,
        "only {fired} of {SCHEDULES} schedules crashed — the schedule rate is too low \
         for the fuzz to mean anything"
    );
}

/// Snapshot atomicity: a crash between writing the snapshot temp file
/// and renaming it into place must leave the *previous* snapshot
/// loadable, with the full WAL still covering the tail — recovery is
/// exact either way.
#[cfg(feature = "fault-injection")]
#[test]
fn snapshot_crash_leaves_previous_snapshot_loadable() {
    use certa::data::{arm_crash_site, disarm_crashes};
    let _guard = CRASH_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (case, site) in ["snapshot:tmp", "snapshot:rename"].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDEAD_0000 + case as u64);
        let dir = test_dir(&format!("snapcrash-{case}"));
        let mut db = base_db(&mut rng);
        db.attach_durable(&dir).unwrap();
        let baseline_epoch = db.epoch();
        let (_, crashed) = run_sequence_with(&mut rng, &mut db, 12, 0.0);
        assert!(!crashed);

        arm_crash_site(site, 1);
        let err = db.snapshot_durable().unwrap_err();
        disarm_crashes();
        assert!(
            err.to_string().contains(site),
            "the injected {site} crash must surface: {err}"
        );
        assert!(db.durability_crashed().is_some());

        // The store in memory was never touched by the failed snapshot;
        // the baseline snapshot plus the intact WAL reproduce it exactly.
        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(recovered, db, "{site}: recovery must reproduce the writer");
        assert_eq!(
            report.snapshot_epoch, baseline_epoch,
            "{site}: recovery must fall back to the baseline snapshot ({report:?})"
        );
        assert_eq!(
            report.snapshots_skipped, 0,
            "{site}: a crashed snapshot must not leave a candidate file behind ({report:?})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Cache hygiene across a crash: answers cached before the crash are
/// never served after recovery — the recovered instance is fresh, the
/// warm pipeline recomputes, and a cold pipeline starts at zero hits.
#[cfg(feature = "fault-injection")]
#[test]
fn recovery_serves_zero_pre_crash_cache_hits() {
    use certa::data::{arm_crash_site, disarm_crashes};
    let _guard = CRASH_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = test_dir("cachehygiene");
    let mut db =
        database_from_literal([("R", vec!["a"], vec![tup![1], tup![2], tup![Value::null(0)]])]);
    let mut pipeline = Pipeline::open(&mut db, &dir).unwrap();
    let sql = "SELECT a FROM R WHERE a <> 2";

    let warm = pipeline.execute(sql, &db, Scheme::Exact).unwrap();
    pipeline.execute(sql, &db, Scheme::Exact).unwrap();
    let served_before = pipeline.maintenance_totals().served;
    assert!(
        served_before > 0,
        "the second execution must serve the cache"
    );

    // Crash the very next WAL append, mid-mutation.
    arm_crash_site("wal:frame", 1);
    assert!(db.insert("R", tup![3]).is_err());
    disarm_crashes();
    drop(db);

    let (recovered, pipeline2, report) = Pipeline::recover(&dir).unwrap();
    assert_eq!(
        report.frames_replayed, 0,
        "nothing survived the crash: {report:?}"
    );
    assert_eq!(pipeline2.maintenance_totals().served, 0);

    // The warm pipeline sees a fresh instance: recompute, not serve —
    // even though the recovered contents and epoch look identical.
    let recomputed_before = pipeline.maintenance_totals().recomputed;
    let after = pipeline.execute(sql, &recovered, Scheme::Exact).unwrap();
    let totals = pipeline.maintenance_totals();
    assert_eq!(
        totals.served, served_before,
        "a pre-crash cached answer was served against the recovered instance"
    );
    assert!(
        totals.recomputed > recomputed_before,
        "the post-recovery answer must be recomputed from scratch"
    );
    assert_eq!(warm.certain(), after.certain(), "answers agree nonetheless");

    let _ = std::fs::remove_dir_all(&dir);
}
