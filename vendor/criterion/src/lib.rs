//! Minimal, dependency-free drop-in for the subset of the `criterion` 0.5
//! API this workspace uses (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!`/
//! `criterion_main!` macros, and `black_box`).
//!
//! The build environment cannot reach crates.io, so the real criterion crate
//! is unavailable. This stand-in measures each benchmark with a short
//! adaptive loop and prints `name ... median time` lines; under
//! `cargo test` (which passes `--test` to `harness = false` bench targets)
//! every benchmark body runs exactly once, keeping the test suite fast while
//! still smoke-testing the bench code. Swapping in the real criterion is a
//! one-line change in the workspace manifest.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark: a function name plus a
/// parameter rendering, shown as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Median per-iteration time of the last `iter` call, if measured.
    last: Option<Duration>,
}

impl Bencher {
    /// Run the routine repeatedly and record its median time. In test mode
    /// (`--test`, as passed by `cargo test`) the routine runs exactly once.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            self.last = None;
            return;
        }
        // Warm-up.
        black_box(routine());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut samples: Vec<Duration> = Vec::new();
        while samples.len() < 3 || (started.elapsed() < budget && samples.len() < 25) {
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed());
        }
        samples.sort();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            last: None,
        };
        f(&mut bencher);
        match bencher.last {
            Some(t) => println!("{}/{:<40} {:>12.3?}", self.name, bencher_label(&id.id), t),
            None => println!("{full} ... ok (test mode)"),
        }
    }

    /// Benchmark a routine.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        self.run(id.into(), f);
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.into(), |b| f(b, input));
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn bencher_label(id: &str) -> &str {
    id
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    /// Substring filters from the command line (real criterion's
    /// positional `FILTER` argument): with any present, only benchmarks
    /// whose `group/name` contains one of them run.
    filters: Vec<String>,
}

impl Criterion {
    /// Honour the `--test` flag `cargo test` passes to bench binaries, and
    /// collect positional arguments as name filters (so
    /// `cargo bench --bench ablations -- a08` runs only the `a08_*`
    /// group, like the real criterion).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filters.push(arg);
            }
        }
        self
    }

    /// Whether a `group/name` benchmark id passes the command-line
    /// filters. Public so bench files can gate *setup* work on the same
    /// predicate the harness applies to the measured bodies (the real
    /// criterion exposes equivalent filtering through its CLI).
    pub fn matches(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one sample, got {runs}");
    }
}
