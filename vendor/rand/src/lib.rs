//! Minimal, dependency-free drop-in for the subset of the `rand` 0.8 API
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched; every consumer in this repository only
//! needs seeded, deterministic pseudo-randomness for workload generation and
//! Monte-Carlo estimation, which a SplitMix64 generator provides with more
//! than enough statistical quality. Swapping this crate for the real one is
//! a one-line change in the workspace manifest.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range (the tiny subset of
/// `rand::distributions::uniform::SampleRange` we need).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64, i32, i64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: SplitMix64 (Steele, Lea & Flood 2014) — a small,
/// fast generator that passes BigCrush when used as a stream, and is more
/// than adequate for workload generation and sampling.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: i64 = rng.gen_range(10..1000);
            assert!((10..1000).contains(&y));
            let z: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
